//! AVX2 complex-GEMM microkernels: the vectorized plane behind
//! [`crate::gemm`]'s tier dispatch.
//!
//! The paper serves the beamforming matrix work (ZF Gram products,
//! per-subcarrier equalization, downlink precoding) with MKL's JIT cgemm,
//! which emits AVX-512 code for the one shape a cell uses. These kernels
//! are the AVX2 analogue: interleaved `[re im re im ...]` `__m256` lanes (4
//! complex samples per register), register-tiled over 4 rows x 8 columns,
//! with `vmaskmov` tails for non-multiple-of-4 column counts and the PR 3
//! in-register 4x4 transpose microkernel packing GEMV row panels.
//!
//! **Bit parity contract.** Every kernel reproduces the scalar reference
//! ([`crate::gemm::gemm_scalar`] / [`gemv_scalar`](crate::gemm::gemv_scalar)
//! / [`gram_scalar`](crate::gemm::gram_scalar)) *bit for bit*, so the
//! engine's `simd_gemm` ablation is a pure speed toggle. That pins three
//! choices:
//!
//! * no hardware FMA — [`Cf32::mul_add`] is an unfused multiply-then-add,
//!   so the vector path uses separate `vmulps` + `vaddsubps`/`vaddps`;
//! * the complex MAC is `addsub(b * re(a), swap(b) * im(a))`, whose even
//!   lanes compute `a.re*b.re - a.im*b.im` and odd lanes
//!   `a.re*b.im + a.im*b.re` — the exact products (and, up to the
//!   commutativity of IEEE addition, the exact sums) of the scalar path;
//! * accumulation over the inner dimension is strictly sequential — one
//!   accumulator per output element, never a lane reduction — matching the
//!   scalar loop's association.

#![cfg(target_arch = "x86_64")]
// The microkernels are written in the classic register-tile idiom:
// pointer-and-stride arguments and `0..R` index loops over const-generic
// accumulator arrays, which clippy's iterator/argument lints dislike but
// which keeps the code shaped like the registers it allocates.
#![allow(clippy::too_many_arguments, clippy::needless_range_loop)]

use crate::complex::Cf32;
use core::arch::x86_64::*;

/// Rows per register tile.
const MR: usize = 4;
/// Complex columns per `__m256`.
const NR: usize = 4;
/// GEMV packing depth: the 4-row panel is transposed into an L1-resident
/// scratch this many columns at a time.
const TK: usize = 64;

/// `_mm256_permute_ps` immediate that swaps re/im within each pair.
const SWAP_RE_IM: i32 = 0b1011_0001;

/// Broadcasts one complex sample (8 bytes) to all four pairs of a
/// `__m256`. Goes through an integer load so no unaligned `f64` reference
/// is ever formed (`Cf32` is only 4-byte aligned).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bcast_pair(p: *const Cf32) -> __m256 {
    _mm256_castsi256_ps(_mm256_broadcastq_epi64(_mm_loadu_si64(p as *const u8)))
}

/// Lane mask selecting the first `t` complex samples (`2t` f32 lanes) of a
/// register; `t = 0` selects nothing.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tail_mask(t: usize) -> __m256i {
    let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    _mm256_cmpgt_epi32(_mm256_set1_epi32((2 * t) as i32), idx)
}

/// One complex multiply-accumulate: `acc + broadcast(a) * bv`, where `bv`
/// holds 4 complex samples, `bs` is `bv` with re/im swapped, and
/// `ar`/`ai` are the broadcast real/imaginary parts of the scalar operand.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmac(acc: __m256, bv: __m256, bs: __m256, ar: __m256, ai: __m256) -> __m256 {
    let t = _mm256_addsub_ps(_mm256_mul_ps(bv, ar), _mm256_mul_ps(bs, ai));
    _mm256_add_ps(acc, t)
}

/// Register tile: `R` rows of A (row stride `lda`) times `4*C` columns of
/// B (row stride `ldb`), accumulated over `k` and stored to C (row stride
/// `ldc`). `R <= 4`, `C <= 2` keeps `R*C + 2*C` accumulator/operand
/// registers inside the 16-register budget.
#[target_feature(enable = "avx2")]
unsafe fn tile<const R: usize, const C: usize>(
    a: *const Cf32,
    lda: usize,
    b: *const Cf32,
    ldb: usize,
    k: usize,
    c: *mut Cf32,
    ldc: usize,
) {
    let mut acc = [[_mm256_setzero_ps(); C]; R];
    for p in 0..k {
        let mut bv = [_mm256_setzero_ps(); C];
        let mut bs = [_mm256_setzero_ps(); C];
        for q in 0..C {
            bv[q] = _mm256_loadu_ps(b.add(p * ldb + NR * q) as *const f32);
            bs[q] = _mm256_permute_ps(bv[q], SWAP_RE_IM);
        }
        for r in 0..R {
            let pair = bcast_pair(a.add(r * lda + p));
            let ar = _mm256_moveldup_ps(pair);
            let ai = _mm256_movehdup_ps(pair);
            for q in 0..C {
                acc[r][q] = cmac(acc[r][q], bv[q], bs[q], ar, ai);
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        for (q, v) in row.iter().enumerate() {
            _mm256_storeu_ps(c.add(r * ldc + NR * q) as *mut f32, *v);
        }
    }
}

/// Masked column-tail tile: like [`tile`] with `C = 1`, but loads/stores
/// only the `n % 4` live columns through `vmaskmov`.
#[target_feature(enable = "avx2")]
unsafe fn tile_masked<const R: usize>(
    a: *const Cf32,
    lda: usize,
    b: *const Cf32,
    ldb: usize,
    k: usize,
    c: *mut Cf32,
    ldc: usize,
    mask: __m256i,
) {
    let mut acc = [_mm256_setzero_ps(); R];
    for p in 0..k {
        let bv = _mm256_maskload_ps(b.add(p * ldb) as *const f32, mask);
        let bs = _mm256_permute_ps(bv, SWAP_RE_IM);
        for r in 0..R {
            let pair = bcast_pair(a.add(r * lda + p));
            let ar = _mm256_moveldup_ps(pair);
            let ai = _mm256_movehdup_ps(pair);
            acc[r] = cmac(acc[r], bv, bs, ar, ai);
        }
    }
    for (r, v) in acc.iter().enumerate() {
        _mm256_maskstore_ps(c.add(r * ldc) as *mut f32, mask, *v);
    }
}

/// Accumulating register tile: like [`tile`], but the accumulators start
/// from the prior contents of C instead of zero, so the store performs
/// `C += A * B`. Because the accumulator is seeded *before* the `k` loop,
/// every output element sees `prior + p0 + p1 + ...` in strictly
/// sequential order — the exact association of a scalar loop that
/// continues accumulating into a live output.
#[target_feature(enable = "avx2")]
unsafe fn tile_acc<const R: usize, const C: usize>(
    a: *const Cf32,
    lda: usize,
    b: *const Cf32,
    ldb: usize,
    k: usize,
    c: *mut Cf32,
    ldc: usize,
) {
    let mut acc = [[_mm256_setzero_ps(); C]; R];
    for r in 0..R {
        for q in 0..C {
            acc[r][q] = _mm256_loadu_ps(c.add(r * ldc + NR * q) as *const f32);
        }
    }
    for p in 0..k {
        let mut bv = [_mm256_setzero_ps(); C];
        let mut bs = [_mm256_setzero_ps(); C];
        for q in 0..C {
            bv[q] = _mm256_loadu_ps(b.add(p * ldb + NR * q) as *const f32);
            bs[q] = _mm256_permute_ps(bv[q], SWAP_RE_IM);
        }
        for r in 0..R {
            let pair = bcast_pair(a.add(r * lda + p));
            let ar = _mm256_moveldup_ps(pair);
            let ai = _mm256_movehdup_ps(pair);
            for q in 0..C {
                acc[r][q] = cmac(acc[r][q], bv[q], bs[q], ar, ai);
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        for (q, v) in row.iter().enumerate() {
            _mm256_storeu_ps(c.add(r * ldc + NR * q) as *mut f32, *v);
        }
    }
}

/// Masked accumulating column-tail tile: [`tile_masked`] with the
/// accumulators seeded from the live columns of C through `vmaskmov`.
#[target_feature(enable = "avx2")]
unsafe fn tile_acc_masked<const R: usize>(
    a: *const Cf32,
    lda: usize,
    b: *const Cf32,
    ldb: usize,
    k: usize,
    c: *mut Cf32,
    ldc: usize,
    mask: __m256i,
) {
    let mut acc = [_mm256_setzero_ps(); R];
    for r in 0..R {
        acc[r] = _mm256_maskload_ps(c.add(r * ldc) as *const f32, mask);
    }
    for p in 0..k {
        let bv = _mm256_maskload_ps(b.add(p * ldb) as *const f32, mask);
        let bs = _mm256_permute_ps(bv, SWAP_RE_IM);
        for r in 0..R {
            let pair = bcast_pair(a.add(r * lda + p));
            let ar = _mm256_moveldup_ps(pair);
            let ai = _mm256_movehdup_ps(pair);
            acc[r] = cmac(acc[r], bv, bs, ar, ai);
        }
    }
    for (r, v) in acc.iter().enumerate() {
        _mm256_maskstore_ps(c.add(r * ldc) as *mut f32, mask, *v);
    }
}

/// AVX2 `C = A * B` for row-major complex operands, bit-identical to
/// [`crate::gemm::gemm_scalar`].
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and that slice lengths match
/// the `m x k * k x n` shapes (checked by the public dispatch wrappers).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gemm_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[Cf32],
    b: &[Cf32],
    c: &mut [Cf32],
) {
    if n == 1 {
        // Column vector: B is contiguous, so this is exactly a GEMV.
        gemv_avx2(m, k, a, b, c);
        return;
    }
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let cp = c.as_mut_ptr();
    let tail = n % NR;
    let n4 = n - tail;
    let mask = tail_mask(tail);
    let mut i = 0;
    while i + MR <= m {
        let arow = ap.add(i * k);
        let crow = cp.add(i * n);
        let mut j = 0;
        while j + 2 * NR <= n4 {
            tile::<MR, 2>(arow, k, bp.add(j), n, k, crow.add(j), n);
            j += 2 * NR;
        }
        while j + NR <= n4 {
            tile::<MR, 1>(arow, k, bp.add(j), n, k, crow.add(j), n);
            j += NR;
        }
        if tail != 0 {
            tile_masked::<MR>(arow, k, bp.add(j), n, k, crow.add(j), n, mask);
        }
        i += MR;
    }
    while i < m {
        let arow = ap.add(i * k);
        let crow = cp.add(i * n);
        let mut j = 0;
        while j + 2 * NR <= n4 {
            tile::<1, 2>(arow, k, bp.add(j), n, k, crow.add(j), n);
            j += 2 * NR;
        }
        while j + NR <= n4 {
            tile::<1, 1>(arow, k, bp.add(j), n, k, crow.add(j), n);
            j += NR;
        }
        if tail != 0 {
            tile_masked::<1>(arow, k, bp.add(j), n, k, crow.add(j), n, mask);
        }
        i += 1;
    }
}

/// Transposes an `MR x tk` panel of A (row stride `lda`) into `tk x MR`
/// column-interleaved scratch, via the 4x4 in-register transpose
/// microkernel for full blocks and scalar moves for the `tk % 4` edge.
#[target_feature(enable = "avx2")]
unsafe fn pack_panel(a: *const Cf32, lda: usize, tk: usize, dst: *mut Cf32) {
    let full = tk & !3;
    let mut p = 0;
    while p < full {
        crate::simd::transpose_4x4_avx2(a.add(p), lda, dst.add(p * MR), MR);
        p += 4;
    }
    while p < tk {
        for r in 0..MR {
            *dst.add(p * MR + r) = *a.add(r * lda + p);
        }
        p += 1;
    }
}

/// AVX2 `y = A x`, bit-identical to [`crate::gemm::gemv_scalar`].
///
/// Vectorizes *across* four output rows (the sequential-accumulation
/// parity contract forbids splitting the dot product over lanes): each
/// 4-row panel of A is transposed into column-interleaved scratch, after
/// which every step of the dot product is one contiguous load + complex
/// MAC for all four rows at once. Leftover rows run the scalar loop.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and that slice lengths match
/// (checked by the public dispatch wrappers).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gemv_avx2(m: usize, k: usize, a: &[Cf32], x: &[Cf32], y: &mut [Cf32]) {
    let ap = a.as_ptr();
    let xp = x.as_ptr();
    let mut pack = [Cf32::ZERO; MR * TK];
    let mut i = 0;
    while i + MR <= m {
        let mut acc = _mm256_setzero_ps();
        let mut p0 = 0;
        while p0 < k {
            let tk = TK.min(k - p0);
            pack_panel(ap.add(i * k + p0), k, tk, pack.as_mut_ptr());
            for p in 0..tk {
                let av = _mm256_loadu_ps(pack.as_ptr().add(p * MR) as *const f32);
                let asw = _mm256_permute_ps(av, SWAP_RE_IM);
                let pair = bcast_pair(xp.add(p0 + p));
                let xr = _mm256_moveldup_ps(pair);
                let xi = _mm256_movehdup_ps(pair);
                acc = cmac(acc, av, asw, xr, xi);
            }
            p0 += tk;
        }
        _mm256_storeu_ps(y.as_mut_ptr().add(i) as *mut f32, acc);
        i += MR;
    }
    for r in i..m {
        let row = &a[r * k..(r + 1) * k];
        let mut s = Cf32::ZERO;
        for (&aij, &xj) in row.iter().zip(x.iter()) {
            s = aij.mul_add(xj, s);
        }
        y[r] = s;
    }
}

/// AVX2 complex AXPY `y += alpha * x` over contiguous slices,
/// bit-identical to the scalar `alpha.mul_add(x[i], y[i])` loop: each
/// element is one unfused multiply (`addsub` complex product) plus one
/// add, with no cross-element accumulation, so vectorization cannot
/// change results. This is the sweep primitive behind the Cholesky
/// factor/solve kernels: every column update and triangular-solve row
/// elimination is one contiguous AXPY.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and `x.len() == y.len()`
/// (checked by the public dispatch wrapper).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn caxpy_avx2(alpha: Cf32, x: &[Cf32], y: &mut [Cf32]) {
    let n = x.len();
    let pair = bcast_pair(&alpha as *const Cf32);
    let ar = _mm256_moveldup_ps(pair);
    let ai = _mm256_movehdup_ps(pair);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let n4 = n & !(NR - 1);
    let mut i = 0;
    while i < n4 {
        let xv = _mm256_loadu_ps(xp.add(i) as *const f32);
        let xs = _mm256_permute_ps(xv, SWAP_RE_IM);
        let yv = _mm256_loadu_ps(yp.add(i) as *const f32);
        _mm256_storeu_ps(yp.add(i) as *mut f32, cmac(yv, xv, xs, ar, ai));
        i += NR;
    }
    while i < n {
        y[i] = alpha.mul_add(x[i], y[i]);
        i += 1;
    }
}

/// AVX2 fused Cholesky triangular solve: given the lower factor `l`
/// (`n x n`, row-major) and `x` preloaded with the RHS (`n x nrhs`),
/// performs the forward (`L Y = B`) and backward (`L^H X = Y`) column
/// sweeps in place. Bit-identical to the scalar sweep in
/// `cholesky::solve_sweep_scalar`: the row scaling is an elementwise
/// multiply by the same `1/l[p][p]` f32 and each elimination is the
/// [`caxpy_avx2`] body (unfused complex multiply-add, no cross-element
/// accumulation). Fusing the sweeps into one `target_feature` region
/// removes the per-AXPY dispatch and call overhead that dominates at
/// ZF sizes (`n = 16`, `nrhs = 64` means 240 eliminations of 64
/// elements each).
///
/// # Safety
/// Caller must ensure the CPU supports AVX2, `l.len() == n * n`, and
/// `x.len() == n * nrhs`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn chol_solve_avx2(l: &[Cf32], n: usize, x: &mut [Cf32], nrhs: usize) {
    let lp = l.as_ptr();
    let base = x.as_mut_ptr();
    // Forward: L Y = B, swept two columns at a time. The pair is applied
    // to each target row in pivot order (`p` then `p+1`), so every
    // element sees the exact operation sequence of two single-column
    // sweeps — rank-2 only halves the target-row load/store traffic.
    let mut p = 0;
    while p + 1 < n {
        let src0 = base.add(p * nrhs);
        let src1 = base.add((p + 1) * nrhs);
        scale_row(1.0 / (*lp.add(p * n + p)).re, src0, nrhs);
        elim_row(-*lp.add((p + 1) * n + p), src0, src1, nrhs);
        scale_row(1.0 / (*lp.add((p + 1) * n + p + 1)).re, src1, nrhs);
        for i in p + 2..n {
            let a0 = -*lp.add(i * n + p);
            let a1 = -*lp.add(i * n + p + 1);
            elim_row2(a0, src0, a1, src1, base.add(i * nrhs), nrhs);
        }
        p += 2;
    }
    if p < n {
        let src = base.add(p * nrhs);
        scale_row(1.0 / (*lp.add(p * n + p)).re, src, nrhs);
        for i in p + 1..n {
            elim_row(-*lp.add(i * n + p), src, base.add(i * nrhs), nrhs);
        }
    }
    // Backward: L^H X = Y, bottom-up; L^H[i][p] = conj(L[p][i]).
    let mut p = n;
    while p >= 2 {
        p -= 2;
        // Pivot order is `p+1` then `p` (descending), as in the
        // single-column sweep.
        let src1 = base.add((p + 1) * nrhs);
        let src0 = base.add(p * nrhs);
        scale_row(1.0 / (*lp.add((p + 1) * n + p + 1)).re, src1, nrhs);
        elim_row(-(*lp.add((p + 1) * n + p)).conj(), src1, src0, nrhs);
        scale_row(1.0 / (*lp.add(p * n + p)).re, src0, nrhs);
        for i in 0..p {
            let a1 = -(*lp.add((p + 1) * n + i)).conj();
            let a0 = -(*lp.add(p * n + i)).conj();
            elim_row2(a1, src1, a0, src0, base.add(i * nrhs), nrhs);
        }
    }
    if p == 1 {
        // Only row 0 remains: scale it (no rows above to eliminate into).
        scale_row(1.0 / (*lp.add(0)).re, base, nrhs);
    }
}

/// Rank-2 sweep elimination `dst = (dst + a * srca) + b * srcb` — two
/// [`elim_row`] passes fused so the target row is loaded and stored once.
/// Per element the operation sequence is exactly the two sequential
/// single-column eliminations (first `a * srca`, then `b * srcb`), so the
/// result is bit-identical to calling [`elim_row`] twice.
///
/// # Safety
/// Must be inlined into an AVX2 `target_feature` caller; all three
/// pointers must cover `len` valid elements, `dst` disjoint from both
/// sources.
#[inline(always)]
unsafe fn elim_row2(
    a: Cf32,
    srca: *const Cf32,
    b: Cf32,
    srcb: *const Cf32,
    dst: *mut Cf32,
    len: usize,
) {
    let pa = bcast_pair(&a as *const Cf32);
    let ar = _mm256_moveldup_ps(pa);
    let ai = _mm256_movehdup_ps(pa);
    let pb = bcast_pair(&b as *const Cf32);
    let br = _mm256_moveldup_ps(pb);
    let bi = _mm256_movehdup_ps(pb);
    let len4 = len & !(NR - 1);
    let mut c = 0;
    while c < len4 {
        let xa = _mm256_loadu_ps(srca.add(c) as *const f32);
        let xb = _mm256_loadu_ps(srcb.add(c) as *const f32);
        let yv = _mm256_loadu_ps(dst.add(c) as *const f32);
        let t = cmac(yv, xa, _mm256_permute_ps(xa, SWAP_RE_IM), ar, ai);
        let u = cmac(t, xb, _mm256_permute_ps(xb, SWAP_RE_IM), br, bi);
        _mm256_storeu_ps(dst.add(c) as *mut f32, u);
        c += NR;
    }
    while c < len {
        let t = a.mul_add(*srca.add(c), *dst.add(c));
        *dst.add(c) = b.mul_add(*srcb.add(c), t);
        c += 1;
    }
}

/// One sweep elimination `dst += alpha * src` over `len` elements — the
/// [`caxpy_avx2`] body as an always-inlined helper so [`chol_solve_avx2`]
/// pays no per-row call or dispatch cost.
///
/// # Safety
/// Must be inlined into an AVX2 `target_feature` caller; `src` and `dst`
/// must point at `len` valid, non-overlapping elements.
#[inline(always)]
unsafe fn elim_row(alpha: Cf32, src: *const Cf32, dst: *mut Cf32, len: usize) {
    let pair = bcast_pair(&alpha as *const Cf32);
    let ar = _mm256_moveldup_ps(pair);
    let ai = _mm256_movehdup_ps(pair);
    let len4 = len & !(NR - 1);
    let mut c = 0;
    while c < len4 {
        let xv = _mm256_loadu_ps(src.add(c) as *const f32);
        let xs = _mm256_permute_ps(xv, SWAP_RE_IM);
        let yv = _mm256_loadu_ps(dst.add(c) as *const f32);
        _mm256_storeu_ps(dst.add(c) as *mut f32, cmac(yv, xv, xs, ar, ai));
        c += NR;
    }
    while c < len {
        *dst.add(c) = alpha.mul_add(*src.add(c), *dst.add(c));
        c += 1;
    }
}

/// Elementwise scale of a `len`-element row by a real factor (both
/// components multiplied by the same f32 — identical to
/// `Cf32::scale`).
///
/// # Safety
/// Must be inlined into an AVX2 `target_feature` caller; `row` must point
/// at `len` valid elements.
#[inline(always)]
unsafe fn scale_row(inv_d: f32, row: *mut Cf32, len: usize) {
    let vd = _mm256_set1_ps(inv_d);
    let len4 = len & !(NR - 1);
    let mut c = 0;
    while c < len4 {
        let v = _mm256_loadu_ps(row.add(c) as *const f32);
        _mm256_storeu_ps(row.add(c) as *mut f32, _mm256_mul_ps(v, vd));
        c += NR;
    }
    while c < len {
        *row.add(c) = (*row.add(c)).scale(inv_d);
        c += 1;
    }
}

/// AVX2 Hermitian Gram product `g = hh * h` where `hh = h^H` is supplied
/// by the caller: `h` is `rows x cols`, `hh` is `cols x rows`, `g` is
/// `cols x cols`. Bit-identical to
/// [`gram_scalar`](crate::gemm::gram_scalar) on `h`: the tile kernel's
/// sequential inner-dimension accumulation visits exactly the scalar
/// path's `conj(h[r][i]) * h[r][j]` products in the same order, and the
/// mirrored upper triangle `g[i][j] = conj(g[j][i])` is bit-equal to
/// direct evaluation because complex conjugation of an unfused product
/// chain is exact.
///
/// Unlike [`gram_avx2`] (which streams strided columns of `h`), both
/// operands here are walked contiguously — `hh` rows as the A operand,
/// `h` rows as the B operand — and only the lower-triangle tiles are
/// computed, so this is the preferred kernel when `h^H` is already
/// available (the ZF pseudo-inverse needs it anyway as the solve RHS).
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and slice lengths match
/// (checked by the public dispatch wrapper).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gram_pair_avx2(
    rows: usize,
    cols: usize,
    hh: &[Cf32],
    h: &[Cf32],
    g: &mut [Cf32],
) {
    let ap = hh.as_ptr();
    let bp = h.as_ptr();
    let gp = g.as_mut_ptr();
    let k = cols;
    // Lower-triangle tiles: row blocks of hh against column strips of h
    // with strip start <= block start (the block-diagonal strip included).
    let mut i0 = 0;
    while i0 + MR <= k {
        let arow = ap.add(i0 * rows);
        let crow = gp.add(i0 * k);
        // Pair adjacent strips into two-register tiles where possible —
        // same outputs, half the broadcast/load overhead per MAC.
        let mut j0 = 0;
        while j0 + 2 * NR <= i0 + NR {
            tile::<MR, 2>(arow, rows, bp.add(j0), k, rows, crow.add(j0), k);
            j0 += 2 * NR;
        }
        while j0 <= i0 {
            let w = NR.min(k - j0);
            if w == NR {
                tile::<MR, 1>(arow, rows, bp.add(j0), k, rows, crow.add(j0), k);
            } else {
                tile_masked::<MR>(arow, rows, bp.add(j0), k, rows, crow.add(j0), k, tail_mask(w));
            }
            j0 += NR;
        }
        i0 += MR;
    }
    for i in i0..k {
        let arow = ap.add(i * rows);
        let crow = gp.add(i * k);
        let mut j0 = 0;
        while j0 <= i {
            let w = NR.min(k - j0);
            if w == NR {
                tile::<1, 1>(arow, rows, bp.add(j0), k, rows, crow.add(j0), k);
            } else {
                tile_masked::<1>(arow, rows, bp.add(j0), k, rows, crow.add(j0), k, tail_mask(w));
            }
            j0 += NR;
        }
    }
    // Mirror the strictly-upper tiles: columns beyond the row's diagonal
    // strip come from the conjugate of the computed lower triangle.
    for i in 0..k {
        let covered = ((i / NR) * NR + NR).min(k);
        for j in covered..k {
            *gp.add(i * k + j) = (*gp.add(j * k + i)).conj();
        }
    }
}

/// AVX2 accumulating Hermitian Gram product `g += hh * h` where
/// `hh = h^H` is supplied by the caller: `h` is `rows x cols`, `hh` is
/// `cols x rows`, `g` is `cols x cols`. This is the per-antenna-cluster
/// partial-Gram kernel: each cluster's `H_i^H H_i` folds into the running
/// total with the same tile schedule as [`gram_pair_avx2`], but the
/// accumulating tiles ([`tile_acc`] / [`tile_acc_masked`]) seed their
/// registers from the prior contents of `g`, so every element sees
/// `prior + p0 + p1 + ...` in the scalar reference's sequential order —
/// bit-identical to [`gram_accumulate_scalar`](crate::gemm::
/// gram_accumulate_scalar).
///
/// Only the lower triangle is accumulated; the strictly-upper tiles are
/// rebuilt by conjugate mirroring. That is bit-equal to direct upper
/// accumulation **only when the prior contents of `g` are exactly
/// Hermitian bitwise** (zero, or the result of previous Gram
/// accumulations): conjugation distributes exactly over IEEE addition
/// and over the unfused complex products, so
/// `conj(prior[j][i] + sum) = prior[i][j] + conj(sum)`. The public
/// dispatch wrapper documents this precondition.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and slice lengths match
/// (checked by the public dispatch wrapper).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gram_accumulate_avx2(
    rows: usize,
    cols: usize,
    hh: &[Cf32],
    h: &[Cf32],
    g: &mut [Cf32],
) {
    let ap = hh.as_ptr();
    let bp = h.as_ptr();
    let gp = g.as_mut_ptr();
    let k = cols;
    // Lower-triangle tiles, same schedule as `gram_pair_avx2`.
    let mut i0 = 0;
    while i0 + MR <= k {
        let arow = ap.add(i0 * rows);
        let crow = gp.add(i0 * k);
        let mut j0 = 0;
        while j0 + 2 * NR <= i0 + NR {
            tile_acc::<MR, 2>(arow, rows, bp.add(j0), k, rows, crow.add(j0), k);
            j0 += 2 * NR;
        }
        while j0 <= i0 {
            let w = NR.min(k - j0);
            if w == NR {
                tile_acc::<MR, 1>(arow, rows, bp.add(j0), k, rows, crow.add(j0), k);
            } else {
                tile_acc_masked::<MR>(
                    arow,
                    rows,
                    bp.add(j0),
                    k,
                    rows,
                    crow.add(j0),
                    k,
                    tail_mask(w),
                );
            }
            j0 += NR;
        }
        i0 += MR;
    }
    for i in i0..k {
        let arow = ap.add(i * rows);
        let crow = gp.add(i * k);
        let mut j0 = 0;
        while j0 <= i {
            let w = NR.min(k - j0);
            if w == NR {
                tile_acc::<1, 1>(arow, rows, bp.add(j0), k, rows, crow.add(j0), k);
            } else {
                tile_acc_masked::<1>(
                    arow,
                    rows,
                    bp.add(j0),
                    k,
                    rows,
                    crow.add(j0),
                    k,
                    tail_mask(w),
                );
            }
            j0 += NR;
        }
    }
    // Mirror the strictly-upper tiles from the accumulated lower triangle.
    for i in 0..k {
        let covered = ((i / NR) * NR + NR).min(k);
        for j in covered..k {
            *gp.add(i * k + j) = (*gp.add(j * k + i)).conj();
        }
    }
}

/// AVX2 Gram matrix `out = A^H A` (`cols x cols`), bit-identical to
/// [`crate::gemm::gram_scalar`]. Conjugation costs one sign flip on the
/// broadcast imaginary part; the column loads stay contiguous.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and that slice lengths match
/// (checked by the public dispatch wrappers).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gram_avx2(rows: usize, cols: usize, a: &[Cf32], out: &mut [Cf32]) {
    let ap = a.as_ptr();
    let op = out.as_mut_ptr();
    let tail = cols % NR;
    let n4 = cols - tail;
    let mask = tail_mask(tail);
    for i in 0..cols {
        let orow = op.add(i * cols);
        let mut j = 0;
        while j + NR <= n4 {
            let acc = gram_col(ap, rows, cols, i, j, false, mask);
            _mm256_storeu_ps(orow.add(j) as *mut f32, acc);
            j += NR;
        }
        if tail != 0 {
            let acc = gram_col(ap, rows, cols, i, j, true, mask);
            _mm256_maskstore_ps(orow.add(j) as *mut f32, mask, acc);
        }
    }
}

/// One 4-column strip of the Gram matrix row `i`, accumulated over all
/// `rows` of A in the scalar kernel's row-major order.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn gram_col(
    a: *const Cf32,
    rows: usize,
    cols: usize,
    i: usize,
    j: usize,
    masked: bool,
    mask: __m256i,
) -> __m256 {
    let neg = _mm256_set1_ps(-0.0);
    let mut acc = _mm256_setzero_ps();
    for r in 0..rows {
        let base = a.add(r * cols);
        let bv = if masked {
            _mm256_maskload_ps(base.add(j) as *const f32, mask)
        } else {
            _mm256_loadu_ps(base.add(j) as *const f32)
        };
        let bs = _mm256_permute_ps(bv, SWAP_RE_IM);
        let pair = bcast_pair(base.add(i));
        let ar = _mm256_moveldup_ps(pair);
        // conj(a[r][i]): negating the broadcast imaginary reproduces the
        // scalar path's `row[i].conj()` products exactly.
        let ai = _mm256_xor_ps(_mm256_movehdup_ps(pair), neg);
        acc = cmac(acc, bv, bs, ar, ai);
    }
    acc
}
