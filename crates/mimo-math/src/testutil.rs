//! Shared test-only helpers: deterministic random matrices.
//!
//! Every numeric test in this crate used to carry its own copy of the
//! xorshift sampler, and every copy had the same bug: the uniform draw
//! `[0, 1) - 0.25` produced a *biased* range `[-0.25, 0.75)` — a
//! non-zero-mean "channel" whose Gram matrices are systematically better
//! conditioned than i.i.d. zero-mean fading. The single copy here is
//! centered (`[-0.5, 0.5)`) so the tested ensembles look like the
//! channels the engine actually sees.

use crate::complex::Cf32;
use crate::matrix::CMat;

/// Deterministic xorshift64* state stepper.
fn step(state: &mut u64) -> f32 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    // 53 high bits -> [0, 1), then center to [-0.5, 0.5).
    ((*state >> 11) as f32 / (1u64 << 53) as f32) - 0.5
}

/// Seeded `rows x cols` complex matrix with i.i.d. entries uniform on
/// `[-0.5, 0.5)` per component (zero mean).
pub fn rand_mat(rows: usize, cols: usize, seed: u64) -> CMat {
    let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(99) | 1;
    CMat::from_fn(rows, cols, |_, _| {
        let re = step(&mut state);
        let im = step(&mut state);
        Cf32::new(re, im)
    })
}

/// Seeded `m x k` channel matrix — alias of [`rand_mat`] kept for test
/// readability at call sites that think in (antennas, users).
pub fn rand_channel(m: usize, k: usize, seed: u64) -> CMat {
    rand_mat(m, k, seed)
}

/// Random Hermitian positive-definite `n x n` matrix: `A^H A + 0.5 I`
/// for a random square `A` (comfortably PD, condition number modest).
pub fn rand_hpd(n: usize, seed: u64) -> CMat {
    let a = rand_mat(n, n, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut g = a.gram();
    for i in 0..n {
        g[(i, i)] += Cf32::real(0.5);
    }
    g
}

/// Well-conditioned random square matrix: random entries plus `n` on the
/// diagonal (diagonally dominant).
pub fn rand_diag_dominant(n: usize, seed: u64) -> CMat {
    let mut m = rand_mat(n, n, seed);
    for i in 0..n {
        m[(i, i)] += Cf32::new(n as f32, 0.0);
    }
    m
}
