//! Householder QR decomposition.
//!
//! The third pseudo-inverse route (between the fast Gram-inverse and the
//! slow-but-robust SVD): `A = Q R` with orthonormal `Q` gives the
//! least-squares solve `x = R^{-1} Q^H b` without squaring the condition
//! number the way the Gram matrix does. MKL-based basebands often use QR
//! for mid-conditioned channels; we provide it for the same ablation
//! space.

use crate::complex::Cf32;
use crate::matrix::CMat;

/// Thin QR factors of an `m x n` matrix (`m >= n`): `q` is `m x n` with
/// orthonormal columns, `r` is `n x n` upper triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal columns.
    pub q: CMat,
    /// Upper-triangular factor.
    pub r: CMat,
}

/// Computes the thin QR decomposition by modified Gram-Schmidt with one
/// reorthogonalisation pass (numerically adequate for MIMO-sized
/// problems in f32; tests verify orthogonality to 1e-4).
///
/// # Panics
/// Panics if `m < n`.
pub fn qr(a: &CMat) -> Qr {
    let (m, n) = a.shape();
    assert!(m >= n, "thin QR requires m >= n (got {m}x{n})");
    let mut q = a.clone();
    let mut r = CMat::zeros(n, n);

    for j in 0..n {
        // Two MGS passes against previous columns.
        for _pass in 0..2 {
            for i in 0..j {
                // proj = q_i^H q_j
                let mut proj = Cf32::ZERO;
                for row in 0..m {
                    proj = q[(row, i)].conj_mul(q[(row, j)]) + proj;
                }
                r[(i, j)] += proj;
                for row in 0..m {
                    let qi = q[(row, i)];
                    q[(row, j)] -= qi * proj;
                }
            }
        }
        let norm: f32 = (0..m).map(|row| q[(row, j)].norm_sqr()).sum::<f32>().sqrt();
        r[(j, j)] = Cf32::real(norm);
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for row in 0..m {
                q[(row, j)] = q[(row, j)].scale(inv);
            }
        }
    }
    Qr { q, r }
}

impl Qr {
    /// Solves the least-squares problem `min ||A x - b||` via
    /// `R x = Q^H b` (back substitution). `b` has one column per RHS.
    pub fn solve(&self, b: &CMat) -> CMat {
        let n = self.r.rows();
        let qtb = self.q.hermitian().matmul(b);
        let mut x = CMat::zeros(n, b.cols());
        for c in 0..b.cols() {
            for i in (0..n).rev() {
                let mut acc = qtb[(i, c)];
                for j in i + 1..n {
                    acc -= self.r[(i, j)] * x[(j, c)];
                }
                x[(i, c)] = acc * self.r[(i, i)].inv();
            }
        }
        x
    }

    /// Pseudo-inverse `A^+ = R^{-1} Q^H` (`n x m`).
    pub fn pinv(&self) -> CMat {
        self.solve(&CMat::identity(self.q.rows()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(m: usize, n: usize, seed: u64) -> CMat {
        let mut state = seed | 1;
        CMat::from_fn(m, n, |_, _| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
            };
            Cf32::new(next(), next())
        })
    }

    #[test]
    fn qr_reconstructs() {
        let a = rand_mat(12, 5, 1);
        let f = qr(&a);
        assert!(f.q.matmul(&f.r).max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn q_columns_orthonormal() {
        let a = rand_mat(16, 8, 2);
        let f = qr(&a);
        let g = f.q.hermitian().matmul(&f.q);
        assert!(g.max_abs_diff(&CMat::identity(8)) < 1e-4);
    }

    #[test]
    fn r_is_upper_triangular_with_real_diagonal() {
        let a = rand_mat(10, 6, 3);
        let f = qr(&a);
        for i in 0..6 {
            assert!(f.r[(i, i)].im.abs() < 1e-6);
            assert!(f.r[(i, i)].re >= 0.0);
            for j in 0..i {
                assert!(f.r[(i, j)].abs() < 1e-6, "below-diagonal ({i},{j})");
            }
        }
    }

    #[test]
    fn qr_pinv_left_inverts() {
        let h = rand_mat(64, 16, 4);
        let w = qr(&h).pinv();
        assert_eq!(w.shape(), (16, 64));
        let wh = w.matmul(&h);
        assert!(wh.max_abs_diff(&CMat::identity(16)) < 1e-2);
    }

    #[test]
    fn qr_pinv_agrees_with_gram_route() {
        let h = rand_mat(16, 4, 5);
        let w_qr = qr(&h).pinv();
        let w_gram = crate::pinv::pinv_direct(&h).unwrap();
        assert!(w_qr.max_abs_diff(&w_gram) < 1e-2);
    }

    #[test]
    fn least_squares_residual_orthogonal() {
        // Overdetermined solve: residual must be orthogonal to col(A).
        let a = rand_mat(10, 3, 6);
        let b = rand_mat(10, 1, 7);
        let x = qr(&a).solve(&b);
        let residual = b.sub(&a.matmul(&x));
        let proj = a.hermitian().matmul(&residual);
        assert!(proj.fro_norm() < 1e-3, "A^H r = {}", proj.fro_norm());
    }

    #[test]
    fn square_identity_qr() {
        let i = CMat::identity(4);
        let f = qr(&i);
        assert!(f.q.max_abs_diff(&i) < 1e-6);
        assert!(f.r.max_abs_diff(&i) < 1e-6);
    }
}
