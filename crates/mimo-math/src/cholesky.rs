//! Cholesky factorisation of Hermitian positive-definite matrices.
//!
//! The zero-forcing Gram matrix `H^H H` is Hermitian positive definite
//! whenever `H` has full column rank, so its inverse can be computed with a
//! Cholesky factorisation at roughly half the flops of Gauss-Jordan. The
//! engine uses Gauss-Jordan by default (it matches the paper's direct-
//! inverse description and is insensitive to slight asymmetry from float
//! rounding), but exposes this route for the ablation benches.

use crate::complex::Cf32;
use crate::matrix::CMat;

/// Error returned when a matrix is not Hermitian positive definite (a
/// non-positive pivot appeared on the diagonal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotPositiveDefinite {
    /// The factorisation step at which the pivot failed.
    pub step: usize,
    /// The offending pivot value.
    pub pivot: f32,
}

impl core::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot {} at step {})",
            self.pivot, self.step
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `A = L L^H`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: CMat,
}

impl Cholesky {
    /// Factorises a Hermitian positive-definite matrix. Only the lower
    /// triangle of `a` is read; the strict upper triangle is ignored, so
    /// callers may pass a matrix whose upper triangle is garbage.
    pub fn factor(a: &CMat) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut l = CMat::zeros(n, n);
        for j in 0..n {
            // Diagonal pivot: real by Hermitian symmetry.
            let mut d = a[(j, j)].re;
            for p in 0..j {
                d -= l[(j, p)].norm_sqr();
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NotPositiveDefinite { step: j, pivot: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = Cf32::real(dj);
            let inv_dj = 1.0 / dj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for p in 0..j {
                    // s -= L[i][p] * conj(L[j][p])
                    s -= l[(i, p)] * l[(j, p)].conj();
                }
                l[(i, j)] = s.scale(inv_dj);
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &CMat {
        &self.l
    }

    /// Solves `A x = b` using the factorisation.
    pub fn solve_vec(&self, b: &[Cf32]) -> Vec<Cf32> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        // Forward: L y = b
        let mut y = vec![Cf32::ZERO; n];
        for i in 0..n {
            let mut acc = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= self.l[(i, j)] * yj;
            }
            y[i] = acc * self.l[(i, i)].inv();
        }
        // Backward: L^H x = y
        let mut x = vec![Cf32::ZERO; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.l[(j, i)].conj() * xj;
            }
            x[i] = acc * self.l[(i, i)].inv();
        }
        x
    }

    /// Solves `A X = B` column-by-column.
    pub fn solve(&self, b: &CMat) -> CMat {
        let n = self.l.rows();
        assert_eq!(b.rows(), n);
        let mut x = CMat::zeros(n, b.cols());
        for c in 0..b.cols() {
            let bc = b.col(c);
            let xc = self.solve_vec(&bc);
            for (r, v) in xc.into_iter().enumerate() {
                x[(r, c)] = v;
            }
        }
        x
    }

    /// Computes `A^{-1}` by solving against the identity.
    pub fn inverse(&self) -> CMat {
        self.solve(&CMat::identity(self.l.rows()))
    }

    /// Determinant of `A` (product of squared diagonal pivots); real and
    /// positive for positive-definite input.
    pub fn det(&self) -> f32 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].re * self.l[(i, i)].re).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverse::invert;

    fn hpd(n: usize, seed: u64) -> CMat {
        // Random A, then A^H A + n*I is comfortably positive definite.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let a = CMat::from_fn(n, n, |_, _| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
            };
            Cf32::new(next(), next())
        });
        let mut g = a.gram();
        for i in 0..n {
            g[(i, i)] += Cf32::real(0.5);
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = hpd(8, 3);
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().hermitian());
        assert!(recon.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn factor_identity_is_identity() {
        let i = CMat::identity(5);
        let ch = Cholesky::factor(&i).unwrap();
        assert!(ch.l().max_abs_diff(&i) < 1e-6);
        assert!((ch.det() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn solve_matches_gauss_jordan() {
        let a = hpd(6, 9);
        let b = CMat::from_fn(6, 2, |r, c| Cf32::new(r as f32 + 1.0, c as f32 - 0.5));
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        let x_ref = invert(&a).unwrap().matmul(&b);
        assert!(x.max_abs_diff(&x_ref) < 1e-2);
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-2);
    }

    #[test]
    fn inverse_matches_gauss_jordan() {
        let a = hpd(10, 17);
        let ch = Cholesky::factor(&a).unwrap();
        let inv1 = ch.inverse();
        let inv2 = invert(&a).unwrap();
        assert!(inv1.max_abs_diff(&inv2) < 1e-2);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = CMat::identity(3);
        a[(2, 2)] = Cf32::real(-1.0);
        match Cholesky::factor(&a) {
            Err(NotPositiveDefinite { step: 2, .. }) => {}
            other => panic!("expected failure at step 2, got {other:?}"),
        }
    }

    #[test]
    fn upper_triangle_is_ignored() {
        let a = hpd(4, 21);
        let mut messy = a.clone();
        // Corrupt the strict upper triangle; result must not change.
        for r in 0..4 {
            for c in r + 1..4 {
                messy[(r, c)] = Cf32::new(1e6, -1e6);
            }
        }
        let x1 = Cholesky::factor(&a).unwrap().inverse();
        let x2 = Cholesky::factor(&messy).unwrap().inverse();
        assert!(x1.max_abs_diff(&x2) < 1e-5);
    }

    #[test]
    fn det_of_scaled_identity() {
        let a = CMat::identity(3).scale(4.0);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 64.0).abs() < 1e-3);
    }
}
