//! Cholesky factorisation of Hermitian positive-definite matrices.
//!
//! The zero-forcing Gram matrix `G = H^H H` is Hermitian positive definite
//! whenever `H` has full column rank, so the ZF detector `W = G^{-1} H^H`
//! can be computed with a Cholesky factorisation at roughly half the flops
//! of Gauss-Jordan — and, unlike an epsilon-guarded elimination, the sign
//! of the Cholesky pivot is an *intrinsically correct* positive-definite
//! test: a rank-deficient or numerically near-singular Gram matrix fails
//! the factorisation instead of silently producing a garbage inverse.
//!
//! Two API layers:
//!
//! * the allocating [`Cholesky`] value type (`factor`/`solve`/`inverse`),
//!   convenient for tests and cold paths;
//! * the allocation-free associated kernels
//!   [`Cholesky::factor_into`] / [`Cholesky::solve_into`] /
//!   [`Cholesky::inverse_into`], which work entirely in caller-owned
//!   [`CholScratch`] storage and dispatch their panel updates through the
//!   tier-selected GEMM kernels (bit-identical across SIMD tiers, so the
//!   `simd_gemm` ablation stays a pure speed toggle on this path too).
//!
//! Both the factorisation and the triangular solves are right-looking
//! *column sweeps* over the AVX2 [`caxpy`](crate::gemm::caxpy) primitive:
//! every trailing-matrix update and every solve elimination is one
//! contiguous `y += alpha * x` on a row segment, so the kernels vectorise
//! without any packing, per-call GEMM dispatch, or panel staging — at ZF
//! sizes (`K <= 64`) the sweep form beats the blocked-GEMM form by ~2x
//! because the panels are too small to amortise packing.

use crate::complex::Cf32;
use crate::gemm::{caxpy_with_tier, gemm_with_tier, gram_with_tier};
use crate::matrix::CMat;
use crate::simd::SimdTier;

/// Error returned when a matrix is not Hermitian positive definite within
/// f32 resolution (a pivot at or below the relative threshold appeared on
/// the diagonal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotPositiveDefinite {
    /// The factorisation step at which the pivot failed.
    pub step: usize,
    /// The offending pivot value.
    pub pivot: f32,
}

impl core::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {} at step {})", self.pivot, self.step)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Relative pivot threshold for an `n x n` factorisation whose diagonal
/// scale is `scale`: pivots at or below `n * eps_f32 * scale` are treated
/// as not positive definite. The old guard here (and the `1e-12` one in
/// [`crate::inverse`]) was *below f32 resolution* (eps ~ 1.2e-7), so it
/// could only ever fire on exactly-zero pivots while near-singular
/// matrices sailed through and produced garbage.
#[inline]
pub fn pivot_threshold(n: usize, scale: f32) -> f32 {
    (n as f32) * f32::EPSILON * scale
}

/// Reusable scratch for the allocation-free Cholesky kernels, sized for
/// `n x n` factorisations. The multi-RHS solve is scratch-free (it sweeps
/// in place); the factorisation needs one conjugated-column buffer and
/// the inverse a triangular staging matrix.
#[derive(Debug, Clone)]
pub struct CholScratch {
    /// `L^{-1}` staging buffer for [`Cholesky::inverse_into`] (`n x n`).
    pack_a: Vec<Cf32>,
    /// Conjugated pivot-column buffer for the factorisation sweep
    /// (length `n`).
    cc: Vec<Cf32>,
    /// Product row for the triangular inverse (length `n`).
    row: Vec<Cf32>,
}

impl CholScratch {
    /// Allocates scratch for `n x n` factorisations.
    pub fn new(n: usize) -> Self {
        Self { pack_a: vec![Cf32::ZERO; n * n], cc: vec![Cf32::ZERO; n], row: vec![Cf32::ZERO; n] }
    }
}

/// Lower-triangular Cholesky factor `L` with `A = L L^H`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: CMat,
}

impl Cholesky {
    /// Factorises a Hermitian positive-definite matrix. Only the lower
    /// triangle of `a` is read; the strict upper triangle is ignored, so
    /// callers may pass a matrix whose upper triangle is garbage.
    pub fn factor(a: &CMat) -> Result<Self, NotPositiveDefinite> {
        let n = a.rows();
        let mut l = CMat::zeros(n, n);
        let mut s = CholScratch::new(n);
        Self::factor_into(a, &mut l, &mut s, SimdTier::cached())?;
        Ok(Self { l })
    }

    /// Allocation-free right-looking factorisation into caller-owned
    /// storage: `l` receives the lower-triangular factor (strict upper
    /// triangle zeroed). Each pivot column's trailing update is a sweep of
    /// contiguous-row [`caxpy`](crate::gemm::caxpy) calls against the
    /// conjugated pivot column, so the update vectorises with no packing
    /// and results are bit-identical across SIMD tiers.
    ///
    /// Fails with [`NotPositiveDefinite`] when a pivot falls at or below
    /// the f32-relative threshold ([`pivot_threshold`]) — the PD test
    /// that subsumes the old absolute-epsilon singularity guard.
    ///
    /// # Panics
    /// Panics if `a` is not square, `l` is not the same shape, or `s` was
    /// sized for a smaller matrix.
    pub fn factor_into(
        a: &CMat,
        l: &mut CMat,
        s: &mut CholScratch,
        tier: SimdTier,
    ) -> Result<(), NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let n = a.rows();
        assert_eq!(l.shape(), (n, n), "factor output shape mismatch");
        assert!(s.cc.len() >= n, "scratch sized for a smaller matrix");
        l.as_mut_slice().fill(Cf32::ZERO);
        if n == 0 {
            return Ok(());
        }
        // Working copy: lower triangle of A (the upper triangle of l stays
        // zero and is never read).
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
        }
        // Diagonal scale for the relative pivot test (diagonal of an HPD
        // matrix is real positive; tolerate junk by taking magnitudes).
        let scale =
            (0..n).map(|i| a[(i, i)].re.abs()).fold(0.0f32, f32::max).max(f32::MIN_POSITIVE);
        let thr = pivot_threshold(n, scale);

        for j in 0..n {
            // The diagonal entry is fully updated by the previous sweeps.
            let d = l[(j, j)].re;
            if d <= thr || !d.is_finite() {
                return Err(NotPositiveDefinite { step: j, pivot: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = Cf32::real(dj);
            let inv_dj = 1.0 / dj;
            // Scale the pivot column and stash its conjugate contiguously.
            for i in j + 1..n {
                let v = l[(i, j)].scale(inv_dj);
                l[(i, j)] = v;
                s.cc[i - j - 1] = v.conj();
            }
            // Trailing update: row i loses coeff * conj(pivot column) on
            // its segment `j+1..=i` — one contiguous AXPY per row.
            for i in j + 1..n {
                let coeff = l[(i, j)];
                let row = l.row_mut(i);
                caxpy_with_tier(-coeff, &s.cc[..i - j], &mut row[j + 1..=i], tier);
            }
        }
        Ok(())
    }

    /// Allocation-free multi-RHS solve `A X = B` from a factor computed by
    /// [`Cholesky::factor_into`]: forward then backward triangular solves
    /// as in-place column sweeps — once a row of `X` is solved, it is
    /// eliminated from every remaining row with one contiguous
    /// [`caxpy`](crate::gemm::caxpy) across the whole RHS width. This is
    /// the ZF hot path: `X = W` when `B = H^H`, without ever forming
    /// `G^{-1}`, and the eliminations on distinct rows are independent so
    /// the sweep keeps the vector units saturated.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn solve_into(l: &CMat, b: &CMat, x: &mut CMat, tier: SimdTier) {
        let n = l.rows();
        let nrhs = b.cols();
        assert_eq!(l.shape(), (n, n), "factor must be square");
        assert_eq!(b.rows(), n, "RHS row count must match");
        assert_eq!(x.shape(), (n, nrhs), "solve output shape mismatch");
        x.as_mut_slice().copy_from_slice(b.as_slice());
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe {
                crate::gemm_simd::chol_solve_avx2(l.as_slice(), n, x.as_mut_slice(), nrhs);
            },
            _ => solve_sweep_scalar(l, x, nrhs),
        }
    }

    /// [`Cholesky::solve_into`] without the RHS copy: `x` arrives already
    /// holding `B` and is swept in place. Because the sweep operates on
    /// each RHS column independently (elementwise row scaling plus
    /// cross-row eliminations of full-width rows — no cross-column
    /// accumulation anywhere), solving any contiguous column slice of a
    /// wider system is bit-identical to the same columns of the full
    /// solve. The antenna-cluster ZF reduce stages its `H^H` column slice
    /// straight into the output and solves here.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn solve_in_place(l: &CMat, x: &mut CMat, tier: SimdTier) {
        let n = l.rows();
        let nrhs = x.cols();
        assert_eq!(l.shape(), (n, n), "factor must be square");
        assert_eq!(x.rows(), n, "RHS row count must match");
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe {
                crate::gemm_simd::chol_solve_avx2(l.as_slice(), n, x.as_mut_slice(), nrhs);
            },
            _ => solve_sweep_scalar(l, x, nrhs),
        }
    }

    /// Allocation-free inverse `A^{-1}` from a factor computed by
    /// [`Cholesky::factor_into`]: inverts the triangular factor row by row
    /// (each row one `(1, i, n)` GEMM over the solved prefix), then forms
    /// `A^{-1} = L^{-H} L^{-1}` as a Gram product on the tier kernels.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn inverse_into(l: &CMat, inv: &mut CMat, s: &mut CholScratch, tier: SimdTier) {
        let n = l.rows();
        assert_eq!(l.shape(), (n, n), "factor must be square");
        assert_eq!(inv.shape(), (n, n), "inverse output shape mismatch");
        assert!(s.pack_a.len() >= n * n && s.row.len() >= n, "scratch too small");
        let linv = &mut s.pack_a[..n * n];
        linv.fill(Cf32::ZERO);
        for i in 0..n {
            let inv_d = 1.0 / l[(i, i)].re;
            if i > 0 {
                let (solved, _) = linv.split_at_mut(i * n);
                gemm_with_tier(1, i, n, &l.row(i)[..i], solved, &mut s.row[..n], tier);
            }
            for j in 0..i {
                linv[i * n + j] = s.row[j].scale(-inv_d);
            }
            linv[i * n + i] = Cf32::real(inv_d);
        }
        gram_with_tier(n, n, linv, inv.as_mut_slice(), tier);
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &CMat {
        &self.l
    }

    /// Solves `A x = b` using the factorisation.
    pub fn solve_vec(&self, b: &[Cf32]) -> Vec<Cf32> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        // Forward: L y = b
        let mut y = vec![Cf32::ZERO; n];
        for i in 0..n {
            let mut acc = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= self.l[(i, j)] * yj;
            }
            y[i] = acc * self.l[(i, i)].inv();
        }
        // Backward: L^H x = y
        let mut x = vec![Cf32::ZERO; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.l[(j, i)].conj() * xj;
            }
            x[i] = acc * self.l[(i, i)].inv();
        }
        x
    }

    /// Solves `A X = B` through the multi-RHS sweep kernel.
    pub fn solve(&self, b: &CMat) -> CMat {
        let n = self.l.rows();
        assert_eq!(b.rows(), n);
        let mut x = CMat::zeros(n, b.cols());
        Self::solve_into(&self.l, b, &mut x, SimdTier::cached());
        x
    }

    /// Computes `A^{-1}` from the factorisation.
    pub fn inverse(&self) -> CMat {
        let n = self.l.rows();
        let mut inv = CMat::zeros(n, n);
        let mut s = CholScratch::new(n);
        Self::inverse_into(&self.l, &mut inv, &mut s, SimdTier::cached());
        inv
    }

    /// Determinant of `A` (product of squared diagonal pivots); real and
    /// positive for positive-definite input.
    pub fn det(&self) -> f32 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].re * self.l[(i, i)].re).product()
    }
}

/// Scalar reference for the in-place triangular sweep solve: forward then
/// backward column sweeps over [`caxpy_scalar`](crate::gemm::caxpy_scalar)
/// eliminations. `x` arrives holding the RHS. The AVX2 kernel
/// (`chol_solve_avx2`) is bit-identical — same elementwise scaling, same
/// unfused multiply-adds, no cross-element accumulation anywhere.
fn solve_sweep_scalar(l: &CMat, x: &mut CMat, nrhs: usize) {
    let n = l.rows();
    for p in 0..n {
        let inv_d = 1.0 / l[(p, p)].re;
        let (head, tail) = x.as_mut_slice().split_at_mut((p + 1) * nrhs);
        let src = &mut head[p * nrhs..];
        for z in src.iter_mut() {
            *z = z.scale(inv_d);
        }
        for i in p + 1..n {
            let t = (i - p - 1) * nrhs;
            caxpy_with_tier(-l[(i, p)], src, &mut tail[t..t + nrhs], SimdTier::Scalar);
        }
    }
    for p in (0..n).rev() {
        let inv_d = 1.0 / l[(p, p)].re;
        let (head, tail) = x.as_mut_slice().split_at_mut(p * nrhs);
        let src = &mut tail[..nrhs];
        for z in src.iter_mut() {
            *z = z.scale(inv_d);
        }
        for i in 0..p {
            caxpy_with_tier(
                -l[(p, i)].conj(),
                src,
                &mut head[i * nrhs..(i + 1) * nrhs],
                SimdTier::Scalar,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverse::invert;
    use crate::testutil::rand_hpd;

    #[test]
    fn factor_reconstructs() {
        let a = rand_hpd(8, 3);
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().hermitian());
        assert!(recon.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn factor_identity_is_identity() {
        let i = CMat::identity(5);
        let ch = Cholesky::factor(&i).unwrap();
        assert!(ch.l().max_abs_diff(&i) < 1e-6);
        assert!((ch.det() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn solve_matches_gauss_jordan() {
        let a = rand_hpd(6, 9);
        let b = CMat::from_fn(6, 2, |r, c| Cf32::new(r as f32 + 1.0, c as f32 - 0.5));
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        let x_ref = invert(&a).unwrap().matmul(&b);
        assert!(x.max_abs_diff(&x_ref) < 1e-2);
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-2);
    }

    #[test]
    fn inverse_matches_gauss_jordan() {
        let a = rand_hpd(10, 17);
        let ch = Cholesky::factor(&a).unwrap();
        let inv1 = ch.inverse();
        let inv2 = invert(&a).unwrap();
        assert!(inv1.max_abs_diff(&inv2) < 1e-2);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = CMat::identity(3);
        a[(2, 2)] = Cf32::real(-1.0);
        match Cholesky::factor(&a) {
            Err(NotPositiveDefinite { step: 2, .. }) => {}
            other => panic!("expected failure at step 2, got {other:?}"),
        }
    }

    /// Near-singular (but strictly positive) pivots must now fail too:
    /// the relative threshold is the PD test the old `d <= 0` check only
    /// approximated at exactly zero.
    #[test]
    fn rejects_near_singular() {
        let n = 4;
        let mut a = CMat::identity(n);
        // Last diagonal entry far below n * eps * scale.
        a[(n - 1, n - 1)] = Cf32::real(1e-9);
        match Cholesky::factor(&a) {
            Err(NotPositiveDefinite { step, .. }) => assert_eq!(step, n - 1),
            other => panic!("expected near-singular rejection, got {other:?}"),
        }
    }

    #[test]
    fn upper_triangle_is_ignored() {
        let a = rand_hpd(4, 21);
        let mut messy = a.clone();
        // Corrupt the strict upper triangle; result must not change.
        for r in 0..4 {
            for c in r + 1..4 {
                messy[(r, c)] = Cf32::new(1e6, -1e6);
            }
        }
        let x1 = Cholesky::factor(&a).unwrap().inverse();
        let x2 = Cholesky::factor(&messy).unwrap().inverse();
        assert!(x1.max_abs_diff(&x2) < 1e-5);
    }

    #[test]
    fn det_of_scaled_identity() {
        let a = CMat::identity(3).scale(4.0);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 64.0).abs() < 1e-3);
    }

    /// The blocked kernels must agree across SIMD tiers bit for bit —
    /// everything tier-dependent routes through the parity-contracted
    /// GEMM kernels.
    #[test]
    fn factor_solve_inverse_tier_parity_is_bit_exact() {
        let detected = SimdTier::detect();
        for n in [1usize, 3, 4, 5, 7, 8, 11, 16] {
            let a = rand_hpd(n, 31 + n as u64);
            let b = crate::testutil::rand_mat(n, 6, 77 + n as u64);
            let mut l_s = CMat::zeros(n, n);
            let mut l_v = CMat::zeros(n, n);
            let mut ss = CholScratch::new(n);
            let mut sv = CholScratch::new(n);
            Cholesky::factor_into(&a, &mut l_s, &mut ss, SimdTier::Scalar).unwrap();
            Cholesky::factor_into(&a, &mut l_v, &mut sv, detected).unwrap();
            let bits = |m: &CMat| -> Vec<(u32, u32)> {
                m.as_slice().iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
            };
            assert_eq!(bits(&l_s), bits(&l_v), "factor tier parity n={n}");
            let mut x_s = CMat::zeros(n, 6);
            let mut x_v = CMat::zeros(n, 6);
            Cholesky::solve_into(&l_s, &b, &mut x_s, SimdTier::Scalar);
            Cholesky::solve_into(&l_v, &b, &mut x_v, detected);
            assert_eq!(bits(&x_s), bits(&x_v), "solve tier parity n={n}");
            let mut i_s = CMat::zeros(n, n);
            let mut i_v = CMat::zeros(n, n);
            Cholesky::inverse_into(&l_s, &mut i_s, &mut ss, SimdTier::Scalar);
            Cholesky::inverse_into(&l_v, &mut i_v, &mut sv, detected);
            assert_eq!(bits(&i_s), bits(&i_v), "inverse tier parity n={n}");
        }
    }

    /// Multi-RHS solve agrees with the per-vector reference solve.
    #[test]
    fn solve_into_matches_solve_vec() {
        let a = rand_hpd(9, 41);
        let b = crate::testutil::rand_mat(9, 5, 43);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        for c in 0..5 {
            let xc = ch.solve_vec(&b.col(c));
            for r in 0..9 {
                assert!((x[(r, c)] - xc[r]).abs() < 1e-4, "col {c} row {r}");
            }
        }
    }

    #[test]
    fn empty_matrix_factorises() {
        let a = CMat::zeros(0, 0);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.l().is_empty());
    }
}
