//! Zero-forcing pseudo-inverse computation — the "Precoder calculation"
//! block of the baseband pipeline.
//!
//! The ZF detector/precoder is `W = c * (H^H H)^{-1} H^H` (the paper writes
//! the transposed convention `H* (H^T H*)^{-1}`; both are the Moore-Penrose
//! pseudo-inverse of `H` up to conjugation). Two routes are provided:
//!
//! * [`pinv_direct`]: form the `K x K` Gram matrix and invert it directly —
//!   the paper's fast path (~16 µs for 64x16 on their hardware).
//! * [`pinv_svd`]: the numerically robust SVD route — the slow path that
//!   the "matrix inverse optimisation" row of Table 4 disables down to.
//!
//! Both return a `K x M` matrix `W` such that `W H ≈ I_K`.

use crate::cholesky::{CholScratch, Cholesky, NotPositiveDefinite};
use crate::complex::Cf32;
use crate::gemm::{gemm_with_tier, gram_pair_with_tier};
use crate::inverse::{invert, invert_into, InvError};
use crate::matrix::CMat;
use crate::simd::SimdTier;
use crate::svd::svd;

/// Method selector for pseudo-inverse computation, wired to the engine's
/// ablation flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinvMethod {
    /// Direct inversion of the `K x K` Gram matrix (the optimised path).
    #[default]
    Direct,
    /// Cholesky solve of the Gram system `(H^H H) W = H^H` — half the
    /// flops of Gauss-Jordan, never forms the explicit inverse, and its
    /// pivot sign is an intrinsically correct positive-definite test.
    Cholesky,
    /// Full SVD pseudo-inverse (robust but ~10x slower).
    Svd,
}

/// Computes the ZF pseudo-inverse `(H^H H)^{-1} H^H` by direct Gram-matrix
/// inversion.
///
/// `h` is the `M x K` channel estimate (`M` antennas, `K` users); the
/// result is `K x M`. Fails if the Gram matrix is singular, i.e. the user
/// channels are linearly dependent.
pub fn pinv_direct(h: &CMat) -> Result<CMat, InvError> {
    let hh = h.hermitian();
    let gram = h.gram(); // K x K = H^H H
    let gram_inv = invert(&gram)?;
    Ok(gram_inv.matmul(&hh))
}

/// Computes the ZF pseudo-inverse by Cholesky-factoring the Gram matrix
/// and solving `(H^H H) W = H^H` directly — no explicit inverse is ever
/// formed. Fails with [`NotPositiveDefinite`] when the Gram matrix is not
/// positive definite within f32 resolution (rank-deficient or
/// near-singular channel).
pub fn pinv_cholesky(h: &CMat) -> Result<CMat, NotPositiveDefinite> {
    let (m, k) = h.shape();
    let mut s = PinvScratch::with_tier(m, k, SimdTier::cached());
    let mut out = CMat::zeros(k, m);
    h.hermitian_into(&mut s.hh);
    gram_pair_with_tier(m, k, s.hh.as_slice(), h.as_slice(), s.gram.as_mut_slice(), s.tier);
    Cholesky::factor_into(&s.gram, &mut s.chol_l, &mut s.chol, s.tier)?;
    Cholesky::solve_into(&s.chol_l, &s.hh, &mut out, s.tier);
    Ok(out)
}

/// Computes the ZF pseudo-inverse via thin SVD, zeroing singular values
/// below `rcond * s_max`. Never fails; rank-deficient channels produce the
/// minimum-norm pseudo-inverse.
pub fn pinv_svd(h: &CMat, rcond: f32) -> CMat {
    svd(h).pinv(rcond)
}

/// Computes the pseudo-inverse with the selected method, falling back to
/// SVD if the direct route hits a singular Gram matrix — mirroring how a
/// production system would degrade rather than drop the subcarrier.
pub fn pinv(h: &CMat, method: PinvMethod) -> CMat {
    match method {
        PinvMethod::Direct => pinv_direct(h).unwrap_or_else(|_| pinv_svd(h, 1e-5)),
        PinvMethod::Cholesky => pinv_cholesky(h).unwrap_or_else(|_| pinv_svd(h, 1e-5)),
        PinvMethod::Svd => pinv_svd(h, 1e-5),
    }
}

/// Reusable scratch for [`pinv_into`]: the Hermitian transpose, Gram
/// matrix, and Gauss-Jordan working set for one `M x K` channel shape.
/// One instance per worker lets every ZF task run without touching the
/// allocator (the SVD *fallback* still allocates — it is the degraded
/// path for singular channels, not the steady state).
#[derive(Debug, Clone)]
pub struct PinvScratch {
    /// `K x M` Hermitian transpose `H^H`.
    hh: CMat,
    /// `K x K` Gram matrix `H^H H`.
    gram: CMat,
    /// Gauss-Jordan elimination workspace.
    gram_work: CMat,
    /// `K x K` Gram inverse.
    gram_inv: CMat,
    /// `K x K` lower-triangular Cholesky factor of the Gram matrix.
    chol_l: CMat,
    /// Cholesky factorisation scratch (the solve itself is scratch-free).
    chol: CholScratch,
    /// SIMD tier the Gram/product kernels dispatch to.
    tier: SimdTier,
}

impl PinvScratch {
    /// Allocates scratch for `M x K` channels on the detected SIMD tier.
    pub fn new(m: usize, k: usize) -> Self {
        Self::with_tier(m, k, SimdTier::cached())
    }

    /// Allocates scratch with the kernel dispatch tier pinned by the
    /// caller (the engine's `simd_gemm` ablation; results are bit-equal
    /// across tiers).
    pub fn with_tier(m: usize, k: usize, tier: SimdTier) -> Self {
        Self {
            hh: CMat::zeros(k, m),
            gram: CMat::zeros(k, k),
            gram_work: CMat::zeros(k, k),
            gram_inv: CMat::zeros(k, k),
            chol_l: CMat::zeros(k, k),
            chol: CholScratch::new(k),
            tier,
        }
    }

    /// `K x K` Gram matrix `H^H H` left behind by the last
    /// [`pinv_into`] call — the iterative equalizer reads it back instead
    /// of recomputing.
    pub fn gram(&self) -> &CMat {
        &self.gram
    }

    /// Mutable access to the `K x K` Gram buffer, for callers that fold a
    /// Gram matrix computed elsewhere (the antenna-cluster partial-Gram
    /// reduce) before handing it to [`pinv_from_gram_slice_into`].
    pub fn gram_mut(&mut self) -> &mut CMat {
        &mut self.gram
    }
}

/// [`pinv`] into a caller-owned `K x M` output through reusable scratch —
/// the allocation-free route for hot paths. Semantics match [`pinv`]:
/// the direct method falls back to SVD on a singular Gram matrix.
///
/// # Panics
/// Panics if `out` or the scratch shapes don't match `h` (`M x K`).
pub fn pinv_into(h: &CMat, method: PinvMethod, s: &mut PinvScratch, out: &mut CMat) {
    let (m, k) = h.shape();
    assert_eq!(out.shape(), (k, m), "pinv output must be K x M");
    assert_eq!(s.hh.shape(), (k, m), "scratch shape mismatch");
    match method {
        PinvMethod::Direct => {
            h.hermitian_into(&mut s.hh);
            h.gram_into_tier(&mut s.gram, s.tier);
            if invert_into(&s.gram, &mut s.gram_work, &mut s.gram_inv).is_ok() {
                s.gram_inv.matmul_into_tier(&s.hh, out, s.tier);
                return;
            }
        }
        PinvMethod::Cholesky => {
            // The Gram product reuses the just-computed H^H as a contiguous
            // operand (gram_pair walks only the lower triangle) — the same
            // buffer is the solve RHS one step later.
            h.hermitian_into(&mut s.hh);
            gram_pair_with_tier(m, k, s.hh.as_slice(), h.as_slice(), s.gram.as_mut_slice(), s.tier);
            if Cholesky::factor_into(&s.gram, &mut s.chol_l, &mut s.chol, s.tier).is_ok() {
                Cholesky::solve_into(&s.chol_l, &s.hh, out, s.tier);
                return;
            }
        }
        PinvMethod::Svd => {}
    }
    out.copy_from(&pinv_svd(h, 1e-5));
}

/// Computes a contiguous antenna-column slice `W[:, col0..col0+ncols]` of
/// the ZF pseudo-inverse from a **pre-folded** Gram matrix: the caller
/// has already summed the per-cluster partial Grams into
/// [`PinvScratch::gram_mut`], and `h` is only consulted for the `H^H`
/// right-hand side columns (and the SVD fallback).
///
/// Slicing is bit-exact: both the Cholesky sweep
/// ([`Cholesky::solve_in_place`]) and the inverse-times-`H^H` GEMM
/// operate on each RHS column independently, so `ncols` columns solved
/// here equal the same columns of a full-width solve bit for bit. The
/// `K x K` factor/inverse work is recomputed per slice — it is tiny next
/// to the `M K^2 / shards` solve each slice carries.
///
/// On a Gram matrix that fails the direct or Cholesky route, every slice
/// deterministically falls back to the same full SVD pseudo-inverse of
/// `h` and publishes its columns, so sharded reduces degrade
/// consistently.
///
/// # Panics
/// Panics if the slice exceeds `M`, `out` is not `K x ncols`, or the
/// scratch was sized for a different shape.
pub fn pinv_from_gram_slice_into(
    h: &CMat,
    method: PinvMethod,
    col0: usize,
    ncols: usize,
    s: &mut PinvScratch,
    out: &mut CMat,
) {
    let (m, k) = h.shape();
    assert!(col0 + ncols <= m, "antenna slice out of range");
    assert_eq!(out.shape(), (k, ncols), "slice output must be K x ncols");
    assert_eq!(s.gram.shape(), (k, k), "scratch shape mismatch");
    assert_eq!(s.hh.shape(), (k, m), "scratch shape mismatch");
    match method {
        PinvMethod::Direct => {
            if invert_into(&s.gram, &mut s.gram_work, &mut s.gram_inv).is_ok() {
                // Stage the H^H column slice contiguously in the (idle)
                // hh scratch prefix, then multiply by the Gram inverse.
                // The slice's rows are contiguous in row-major `h`.
                let stage = &mut s.hh.as_mut_slice()[..k * ncols];
                crate::simd::conj_transpose(
                    &h.as_slice()[col0 * k..(col0 + ncols) * k],
                    ncols,
                    k,
                    stage,
                    s.tier,
                );
                gemm_with_tier(
                    k,
                    k,
                    ncols,
                    s.gram_inv.as_slice(),
                    stage,
                    out.as_mut_slice(),
                    s.tier,
                );
                return;
            }
        }
        PinvMethod::Cholesky => {
            if Cholesky::factor_into(&s.gram, &mut s.chol_l, &mut s.chol, s.tier).is_ok() {
                // Stage the H^H slice straight into the output and sweep
                // it in place.
                crate::simd::conj_transpose(
                    &h.as_slice()[col0 * k..(col0 + ncols) * k],
                    ncols,
                    k,
                    out.as_mut_slice(),
                    s.tier,
                );
                Cholesky::solve_in_place(&s.chol_l, out, s.tier);
                return;
            }
        }
        PinvMethod::Svd => {}
    }
    let w = pinv_svd(h, 1e-5);
    for j in 0..k {
        for c in 0..ncols {
            out[(j, c)] = w[(j, col0 + c)];
        }
    }
}

/// Normalises a downlink precoder so that no antenna (row of `W^H`, i.e.
/// column of `W`) exceeds unit transmit power — the constant `c` in the
/// paper's `W_zf = c * H^* (H^T H^*)^{-1}`.
pub fn normalize_precoder(w: &CMat) -> CMat {
    let mut out = w.clone();
    normalize_precoder_in_place(&mut out);
    out
}

/// [`normalize_precoder`] without the copy.
pub fn normalize_precoder_in_place(w: &mut CMat) {
    // Per-antenna power = sum over users of |w_{k,m}|^2 for column m.
    let mut max_power = 0.0f32;
    for m in 0..w.cols() {
        let p: f32 = (0..w.rows()).map(|k| w[(k, m)].norm_sqr()).sum();
        max_power = max_power.max(p);
    }
    if max_power > 0.0 {
        let s = 1.0 / max_power.sqrt();
        for z in w.as_mut_slice().iter_mut() {
            *z = z.scale(s);
        }
    }
}

/// Estimates the 2-norm condition number of `H` via its Gram matrix using
/// power iteration (cheap, no SVD). Used by schedulers that fall back to
/// conjugate beamforming for ill-conditioned channels.
pub fn cond_estimate(h: &CMat, iters: usize) -> f32 {
    let g = h.gram();
    let n = g.rows();
    if n == 0 {
        return 1.0;
    }
    // Largest eigenvalue of G by power iteration. `lmax` alone may be an
    // *underestimate* when the iteration has not converged, which would
    // make the shifted matrix below indefinite — power iteration then
    // locks onto `|shift - lmax|` instead of `shift - lmin` and the
    // estimate comes out wrong-signed. Inflate the shift by the residual
    // bound `||G v - rho v||` (for Hermitian G an eigenvalue lies within
    // the residual of the Rayleigh quotient), so `shift >= lmax` holds up
    // to that bound even when unconverged.
    let (lmax, res) = power_iter(&g, iters);
    let shift = lmax + res;
    // Smallest eigenvalue via power iteration on (shift*I - G), whose
    // spectrum is `shift - lambda_i >= 0`: lmin = shift - mu.
    let shifted = CMat::from_fn(n, n, |r, c| {
        let v = if r == c { Cf32::real(shift) } else { Cf32::ZERO };
        v - g[(r, c)]
    });
    let (mu, _) = power_iter(&shifted, iters);
    let lmin = (shift - mu).max(0.0);
    if lmin <= 0.0 {
        f32::INFINITY
    } else {
        (lmax / lmin).sqrt()
    }
}

/// Power iteration returning the Rayleigh-quotient eigenvalue estimate of
/// the dominant eigenpair and its residual norm `||A v - rho v||` (an
/// a-posteriori error bound for Hermitian `A`).
fn power_iter(a: &CMat, iters: usize) -> (f32, f32) {
    let n = a.rows();
    let mut v: Vec<Cf32> =
        (0..n).map(|i| Cf32::new(1.0 + (i as f32) * 0.37, 0.11 * i as f32)).collect();
    let norm0 = v.iter().map(|z| z.norm_sqr()).sum::<f32>().sqrt();
    for z in v.iter_mut() {
        *z = z.scale(1.0 / norm0);
    }
    let mut w = a.matvec(&v);
    for _ in 1..iters.max(1) {
        let norm = w.iter().map(|z| z.norm_sqr()).sum::<f32>().sqrt();
        if norm <= 0.0 {
            return (0.0, 0.0);
        }
        for (vi, wi) in v.iter_mut().zip(w.iter()) {
            *vi = wi.scale(1.0 / norm);
        }
        w = a.matvec(&v);
    }
    // Rayleigh quotient rho = v^H A v (real for Hermitian A, |v| = 1).
    let rho: f32 = v.iter().zip(w.iter()).map(|(vi, wi)| (vi.conj() * *wi).re).sum();
    let res: f32 =
        v.iter().zip(w.iter()).map(|(vi, wi)| (*wi - vi.scale(rho)).norm_sqr()).sum::<f32>().sqrt();
    (rho, res)
}

/// Conjugate (matched-filter) beamformer `H^H`, the low-cost alternative
/// the paper cites for ill-conditioned channels [Yang & Marzetta 2013].
pub fn conjugate_beamformer(h: &CMat) -> CMat {
    h.hermitian()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::rand_channel;

    #[test]
    fn direct_pinv_left_inverts() {
        let h = rand_channel(64, 16, 1);
        let w = pinv_direct(&h).unwrap();
        assert_eq!(w.shape(), (16, 64));
        let wh = w.matmul(&h);
        assert!(wh.max_abs_diff(&CMat::identity(16)) < 1e-2);
    }

    #[test]
    fn svd_pinv_left_inverts() {
        let h = rand_channel(32, 8, 2);
        let w = pinv_svd(&h, 1e-6);
        let wh = w.matmul(&h);
        assert!(wh.max_abs_diff(&CMat::identity(8)) < 1e-2);
    }

    #[test]
    fn direct_and_svd_agree_on_well_conditioned() {
        let h = rand_channel(16, 4, 3);
        let wd = pinv_direct(&h).unwrap();
        let ws = pinv_svd(&h, 1e-6);
        assert!(wd.max_abs_diff(&ws) < 1e-2);
    }

    #[test]
    fn direct_fails_on_rank_deficient_but_pinv_degrades() {
        // Duplicate user column -> Gram singular.
        let base = rand_channel(8, 1, 4);
        let h = CMat::from_fn(8, 2, |r, _| base[(r, 0)]);
        assert!(pinv_direct(&h).is_err());
        let w = pinv(&h, PinvMethod::Direct); // falls back to SVD
        assert_eq!(w.shape(), (2, 8));
        assert!(w.all_finite());
    }

    #[test]
    fn cholesky_pinv_left_inverts() {
        let h = rand_channel(64, 16, 11);
        let w = pinv_cholesky(&h).unwrap();
        assert_eq!(w.shape(), (16, 64));
        let wh = w.matmul(&h);
        assert!(wh.max_abs_diff(&CMat::identity(16)) < 1e-2);
    }

    #[test]
    fn cholesky_and_direct_agree() {
        for (m, k, seed) in [(64, 16, 21), (16, 5, 22), (8, 1, 23), (32, 7, 24)] {
            let h = rand_channel(m, k, seed);
            let wd = pinv_direct(&h).unwrap();
            let wc = pinv_cholesky(&h).unwrap();
            assert!(wd.max_abs_diff(&wc) < 1e-2, "{m}x{k}");
        }
    }

    /// The nearly-duplicate-user regression from the ISSUE: two columns
    /// differing by ~1e-6. The direct route must *error* (not silently
    /// produce garbage) and both `pinv` and `pinv_into` must degrade to a
    /// finite SVD detector.
    #[test]
    fn near_duplicate_user_errors_and_degrades_to_svd() {
        let m = 32;
        let base = rand_channel(m, 1, 14);
        let h = CMat::from_fn(m, 2, |r, c| {
            let mut v = base[(r, 0)];
            if c == 1 {
                v += Cf32::new(1e-6, -1e-6 * (r as f32));
            }
            v
        });
        assert!(pinv_direct(&h).is_err(), "Gauss-Jordan route must report singular");
        assert!(pinv_cholesky(&h).is_err(), "Cholesky route must report not-PD");
        let svd_ref = pinv_svd(&h, 1e-5);
        for method in [PinvMethod::Direct, PinvMethod::Cholesky] {
            let w = pinv(&h, method);
            assert!(w.all_finite(), "{method:?} produced non-finite W");
            assert!(w.max_abs_diff(&svd_ref) < 1e-6, "{method:?} did not fall back to SVD");
            let mut s = PinvScratch::new(m, 2);
            let mut out = CMat::zeros(2, m);
            pinv_into(&h, method, &mut s, &mut out);
            assert!(out.all_finite());
            assert!(out.max_abs_diff(&svd_ref) < 1e-6, "{method:?} pinv_into fallback");
        }
    }

    #[test]
    fn pinv_into_matches_pinv_both_methods_and_fallback() {
        let h = rand_channel(16, 4, 8);
        let mut s = PinvScratch::new(16, 4);
        let mut out = CMat::zeros(4, 16);
        for method in [PinvMethod::Direct, PinvMethod::Cholesky, PinvMethod::Svd] {
            pinv_into(&h, method, &mut s, &mut out);
            assert!(out.max_abs_diff(&pinv(&h, method)) < 1e-6, "{method:?}");
        }
        // Rank-deficient channel: the scratch route must degrade to SVD
        // exactly like the allocating route.
        let base = rand_channel(8, 1, 4);
        let bad = CMat::from_fn(8, 2, |r, _| base[(r, 0)]);
        let mut s = PinvScratch::new(8, 2);
        let mut out = CMat::zeros(2, 8);
        pinv_into(&bad, PinvMethod::Direct, &mut s, &mut out);
        assert!(out.max_abs_diff(&pinv(&bad, PinvMethod::Direct)) < 1e-6);
    }

    /// Antenna-cluster staged solve: per-cluster partial Grams folded in
    /// fixed order, then per-antenna-slice solves from the folded Gram.
    /// The column slices must reassemble the full-width solve bit for
    /// bit (per-column independence of the sweep/GEMM), and at one
    /// cluster the whole staged pipeline must be bit-identical to the
    /// monolithic [`pinv_into`].
    #[test]
    fn sliced_solve_from_folded_gram_is_bit_exact() {
        use crate::gemm::{gram_accumulate_with_tier, gram_reduce};
        let (m, k) = (32usize, 8usize);
        let h = rand_channel(m, k, 51);
        let bits = |w: &CMat| -> Vec<(u32, u32)> {
            w.as_slice().iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
        };
        for method in [PinvMethod::Direct, PinvMethod::Cholesky] {
            for clusters in [1usize, 3, 4] {
                let mut s = PinvScratch::new(m, k);
                let tier = s.tier;
                // Fold the per-cluster partial Grams in cluster order.
                let mut parts = vec![Cf32::ZERO; clusters * k * k];
                let (base, rem) = (m / clusters, m % clusters);
                let mut r0 = 0usize;
                for c in 0..clusters {
                    let rc = base + usize::from(c < rem);
                    let slice = &h.as_slice()[r0 * k..(r0 + rc) * k];
                    let mut ah = vec![Cf32::ZERO; k * rc];
                    for r in 0..rc {
                        for j in 0..k {
                            ah[j * rc + r] = slice[r * k + j].conj();
                        }
                    }
                    gram_accumulate_with_tier(
                        rc,
                        k,
                        &ah,
                        slice,
                        &mut parts[c * k * k..(c + 1) * k * k],
                        tier,
                    );
                    r0 += rc;
                }
                gram_reduce(&parts, s.gram_mut().as_mut_slice());
                let folded = s.gram().clone();
                let mut full = CMat::zeros(k, m);
                pinv_from_gram_slice_into(&h, method, 0, m, &mut s, &mut full);
                // Shard the antenna columns; slices must equal the same
                // columns of the full-width solve bit for bit.
                let shards = 4usize;
                let mut assembled = CMat::zeros(k, m);
                let (sb, sr) = (m / shards, m % shards);
                let mut c0 = 0usize;
                for sidx in 0..shards {
                    let len = sb + usize::from(sidx < sr);
                    s.gram_mut().copy_from(&folded);
                    let mut out = CMat::zeros(k, len);
                    pinv_from_gram_slice_into(&h, method, c0, len, &mut s, &mut out);
                    for j in 0..k {
                        for c in 0..len {
                            assembled[(j, c0 + c)] = out[(j, c)];
                        }
                    }
                    c0 += len;
                }
                assert_eq!(bits(&assembled), bits(&full), "{method:?} clusters={clusters}");
                if clusters == 1 {
                    let mut sm = PinvScratch::new(m, k);
                    let mut mono = CMat::zeros(k, m);
                    pinv_into(&h, method, &mut sm, &mut mono);
                    assert_eq!(bits(&full), bits(&mono), "{method:?} C=1 vs monolithic");
                }
            }
        }
    }

    /// A rank-deficient folded Gram must push every slice onto the same
    /// SVD fallback, so sharded reduces publish consistent columns.
    #[test]
    fn sliced_solve_fallback_is_consistent_across_slices() {
        let m = 16usize;
        let base = rand_channel(m, 1, 4);
        let h = CMat::from_fn(m, 2, |r, _| base[(r, 0)]);
        let k = 2usize;
        let svd_ref = pinv_svd(&h, 1e-5);
        for method in [PinvMethod::Direct, PinvMethod::Cholesky] {
            let mut s = PinvScratch::new(m, k);
            let tier = s.tier;
            let mut hh = CMat::zeros(k, m);
            h.hermitian_into(&mut hh);
            crate::gemm::gram_pair_with_tier(
                m,
                k,
                hh.as_slice(),
                h.as_slice(),
                s.gram_mut().as_mut_slice(),
                tier,
            );
            let folded = s.gram().clone();
            let mut assembled = CMat::zeros(k, m);
            for (c0, len) in [(0usize, 7usize), (7, 9)] {
                s.gram_mut().copy_from(&folded);
                let mut out = CMat::zeros(k, len);
                pinv_from_gram_slice_into(&h, method, c0, len, &mut s, &mut out);
                for j in 0..k {
                    for c in 0..len {
                        assembled[(j, c0 + c)] = out[(j, c)];
                    }
                }
            }
            assert!(assembled.all_finite());
            assert!(assembled.max_abs_diff(&svd_ref) < 1e-6, "{method:?} fallback mismatch");
        }
    }

    #[test]
    fn normalize_in_place_matches_copying() {
        let h = rand_channel(12, 3, 13);
        let w = pinv_direct(&h).unwrap();
        let mut inplace = w.clone();
        normalize_precoder_in_place(&mut inplace);
        assert!(inplace.max_abs_diff(&normalize_precoder(&w)) < 1e-7);
        // All-zero precoder: no-op, no NaNs.
        let mut z = CMat::zeros(3, 12);
        normalize_precoder_in_place(&mut z);
        assert!(z.all_finite());
    }

    #[test]
    fn normalized_precoder_antenna_power_at_most_one() {
        let h = rand_channel(16, 4, 5);
        let w = normalize_precoder(&pinv_direct(&h).unwrap());
        for m in 0..w.cols() {
            let p: f32 = (0..w.rows()).map(|k| w[(k, m)].norm_sqr()).sum();
            assert!(p <= 1.0 + 1e-4, "antenna {m} power {p} > 1");
        }
    }

    #[test]
    fn cond_estimate_identity_near_one() {
        let h = CMat::identity(8);
        let c = cond_estimate(&h, 50);
        assert!(c < 1.5, "cond of identity estimated as {c}");
    }

    #[test]
    fn cond_estimate_tracks_svd_cond() {
        let h = rand_channel(32, 8, 6);
        let est = cond_estimate(&h, 100);
        let exact = svd(&h).cond();
        assert!(
            (est / exact).abs() > 0.5 && (est / exact).abs() < 2.0,
            "estimate {est} vs exact {exact}"
        );
    }

    /// Matrix with a known large condition number: diagonal "channel"
    /// with singular values 10 and 0.1 -> cond = 100. The unguarded shift
    /// used to go indefinite here when `lmax` was unconverged.
    #[test]
    fn cond_estimate_known_large_condition_number() {
        let n = 8;
        let h = CMat::from_fn(n, n, |r, c| {
            if r != c {
                Cf32::ZERO
            } else if r == n - 1 {
                Cf32::real(0.1)
            } else {
                Cf32::real(10.0)
            }
        });
        let est = cond_estimate(&h, 100);
        assert!(est > 50.0 && est < 200.0, "cond estimate {est} far from true value 100");
        // Few iterations (unconverged lmax) must not produce a
        // wrong-signed / wildly small estimate — worst case it saturates
        // to infinity, never below the truth by more than 2x.
        let rough = cond_estimate(&h, 3);
        assert!(rough > 50.0, "unconverged estimate {rough} collapsed below the true cond");
    }

    #[test]
    fn conjugate_beamformer_is_hermitian_transpose() {
        let h = rand_channel(8, 3, 7);
        let w = conjugate_beamformer(&h);
        assert_eq!(w.shape(), (3, 8));
        assert!(w.max_abs_diff(&h.hermitian()) < 1e-7);
    }
}
