//! Zero-forcing pseudo-inverse computation — the "Precoder calculation"
//! block of the baseband pipeline.
//!
//! The ZF detector/precoder is `W = c * (H^H H)^{-1} H^H` (the paper writes
//! the transposed convention `H* (H^T H*)^{-1}`; both are the Moore-Penrose
//! pseudo-inverse of `H` up to conjugation). Two routes are provided:
//!
//! * [`pinv_direct`]: form the `K x K` Gram matrix and invert it directly —
//!   the paper's fast path (~16 µs for 64x16 on their hardware).
//! * [`pinv_svd`]: the numerically robust SVD route — the slow path that
//!   the "matrix inverse optimisation" row of Table 4 disables down to.
//!
//! Both return a `K x M` matrix `W` such that `W H ≈ I_K`.

use crate::complex::Cf32;
use crate::inverse::{invert, invert_into, InvError};
use crate::matrix::CMat;
use crate::simd::SimdTier;
use crate::svd::svd;

/// Method selector for pseudo-inverse computation, wired to the engine's
/// ablation flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinvMethod {
    /// Direct inversion of the `K x K` Gram matrix (the optimised path).
    #[default]
    Direct,
    /// Full SVD pseudo-inverse (robust but ~10x slower).
    Svd,
}

/// Computes the ZF pseudo-inverse `(H^H H)^{-1} H^H` by direct Gram-matrix
/// inversion.
///
/// `h` is the `M x K` channel estimate (`M` antennas, `K` users); the
/// result is `K x M`. Fails if the Gram matrix is singular, i.e. the user
/// channels are linearly dependent.
pub fn pinv_direct(h: &CMat) -> Result<CMat, InvError> {
    let hh = h.hermitian();
    let gram = h.gram(); // K x K = H^H H
    let gram_inv = invert(&gram)?;
    Ok(gram_inv.matmul(&hh))
}

/// Computes the ZF pseudo-inverse via thin SVD, zeroing singular values
/// below `rcond * s_max`. Never fails; rank-deficient channels produce the
/// minimum-norm pseudo-inverse.
pub fn pinv_svd(h: &CMat, rcond: f32) -> CMat {
    svd(h).pinv(rcond)
}

/// Computes the pseudo-inverse with the selected method, falling back to
/// SVD if the direct route hits a singular Gram matrix — mirroring how a
/// production system would degrade rather than drop the subcarrier.
pub fn pinv(h: &CMat, method: PinvMethod) -> CMat {
    match method {
        PinvMethod::Direct => pinv_direct(h).unwrap_or_else(|_| pinv_svd(h, 1e-5)),
        PinvMethod::Svd => pinv_svd(h, 1e-5),
    }
}

/// Reusable scratch for [`pinv_into`]: the Hermitian transpose, Gram
/// matrix, and Gauss-Jordan working set for one `M x K` channel shape.
/// One instance per worker lets every ZF task run without touching the
/// allocator (the SVD *fallback* still allocates — it is the degraded
/// path for singular channels, not the steady state).
#[derive(Debug, Clone)]
pub struct PinvScratch {
    /// `K x M` Hermitian transpose `H^H`.
    hh: CMat,
    /// `K x K` Gram matrix `H^H H`.
    gram: CMat,
    /// Gauss-Jordan elimination workspace.
    gram_work: CMat,
    /// `K x K` Gram inverse.
    gram_inv: CMat,
    /// SIMD tier the Gram/product kernels dispatch to.
    tier: SimdTier,
}

impl PinvScratch {
    /// Allocates scratch for `M x K` channels on the detected SIMD tier.
    pub fn new(m: usize, k: usize) -> Self {
        Self::with_tier(m, k, SimdTier::cached())
    }

    /// Allocates scratch with the kernel dispatch tier pinned by the
    /// caller (the engine's `simd_gemm` ablation; results are bit-equal
    /// across tiers).
    pub fn with_tier(m: usize, k: usize, tier: SimdTier) -> Self {
        Self {
            hh: CMat::zeros(k, m),
            gram: CMat::zeros(k, k),
            gram_work: CMat::zeros(k, k),
            gram_inv: CMat::zeros(k, k),
            tier,
        }
    }
}

/// [`pinv`] into a caller-owned `K x M` output through reusable scratch —
/// the allocation-free route for hot paths. Semantics match [`pinv`]:
/// the direct method falls back to SVD on a singular Gram matrix.
///
/// # Panics
/// Panics if `out` or the scratch shapes don't match `h` (`M x K`).
pub fn pinv_into(h: &CMat, method: PinvMethod, s: &mut PinvScratch, out: &mut CMat) {
    let (m, k) = h.shape();
    assert_eq!(out.shape(), (k, m), "pinv output must be K x M");
    assert_eq!(s.hh.shape(), (k, m), "scratch shape mismatch");
    if method == PinvMethod::Direct {
        h.hermitian_into(&mut s.hh);
        h.gram_into_tier(&mut s.gram, s.tier);
        if invert_into(&s.gram, &mut s.gram_work, &mut s.gram_inv).is_ok() {
            s.gram_inv.matmul_into_tier(&s.hh, out, s.tier);
            return;
        }
    }
    out.copy_from(&pinv_svd(h, 1e-5));
}

/// Normalises a downlink precoder so that no antenna (row of `W^H`, i.e.
/// column of `W`) exceeds unit transmit power — the constant `c` in the
/// paper's `W_zf = c * H^* (H^T H^*)^{-1}`.
pub fn normalize_precoder(w: &CMat) -> CMat {
    let mut out = w.clone();
    normalize_precoder_in_place(&mut out);
    out
}

/// [`normalize_precoder`] without the copy.
pub fn normalize_precoder_in_place(w: &mut CMat) {
    // Per-antenna power = sum over users of |w_{k,m}|^2 for column m.
    let mut max_power = 0.0f32;
    for m in 0..w.cols() {
        let p: f32 = (0..w.rows()).map(|k| w[(k, m)].norm_sqr()).sum();
        max_power = max_power.max(p);
    }
    if max_power > 0.0 {
        let s = 1.0 / max_power.sqrt();
        for z in w.as_mut_slice().iter_mut() {
            *z = z.scale(s);
        }
    }
}

/// Estimates the 2-norm condition number of `H` via its Gram matrix using
/// power iteration (cheap, no SVD). Used by schedulers that fall back to
/// conjugate beamforming for ill-conditioned channels.
pub fn cond_estimate(h: &CMat, iters: usize) -> f32 {
    let g = h.gram();
    let n = g.rows();
    if n == 0 {
        return 1.0;
    }
    // Largest eigenvalue of G by power iteration.
    let lmax = power_iter(&g, iters);
    // Smallest via power iteration on (lmax*I - G), lmin = lmax - mu.
    let shifted = CMat::from_fn(n, n, |r, c| {
        let v = if r == c { Cf32::real(lmax) } else { Cf32::ZERO };
        v - g[(r, c)]
    });
    let mu = power_iter(&shifted, iters);
    let lmin = (lmax - mu).max(0.0);
    if lmin <= 0.0 {
        f32::INFINITY
    } else {
        (lmax / lmin).sqrt()
    }
}

fn power_iter(a: &CMat, iters: usize) -> f32 {
    let n = a.rows();
    let mut v: Vec<Cf32> = (0..n)
        .map(|i| Cf32::new(1.0 + (i as f32) * 0.37, 0.11 * i as f32))
        .collect();
    let mut lambda = 0.0f32;
    for _ in 0..iters.max(1) {
        let w = a.matvec(&v);
        let norm = w.iter().map(|z| z.norm_sqr()).sum::<f32>().sqrt();
        if norm <= 0.0 {
            return 0.0;
        }
        lambda = norm;
        for (vi, wi) in v.iter_mut().zip(w.iter()) {
            *vi = wi.scale(1.0 / norm);
        }
    }
    lambda
}

/// Conjugate (matched-filter) beamformer `H^H`, the low-cost alternative
/// the paper cites for ill-conditioned channels [Yang & Marzetta 2013].
pub fn conjugate_beamformer(h: &CMat) -> CMat {
    h.hermitian()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_channel(m: usize, k: usize, seed: u64) -> CMat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        CMat::from_fn(m, k, |_, _| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
            };
            Cf32::new(next(), next())
        })
    }

    #[test]
    fn direct_pinv_left_inverts() {
        let h = rand_channel(64, 16, 1);
        let w = pinv_direct(&h).unwrap();
        assert_eq!(w.shape(), (16, 64));
        let wh = w.matmul(&h);
        assert!(wh.max_abs_diff(&CMat::identity(16)) < 1e-2);
    }

    #[test]
    fn svd_pinv_left_inverts() {
        let h = rand_channel(32, 8, 2);
        let w = pinv_svd(&h, 1e-6);
        let wh = w.matmul(&h);
        assert!(wh.max_abs_diff(&CMat::identity(8)) < 1e-2);
    }

    #[test]
    fn direct_and_svd_agree_on_well_conditioned() {
        let h = rand_channel(16, 4, 3);
        let wd = pinv_direct(&h).unwrap();
        let ws = pinv_svd(&h, 1e-6);
        assert!(wd.max_abs_diff(&ws) < 1e-2);
    }

    #[test]
    fn direct_fails_on_rank_deficient_but_pinv_degrades() {
        // Duplicate user column -> Gram singular.
        let base = rand_channel(8, 1, 4);
        let h = CMat::from_fn(8, 2, |r, _| base[(r, 0)]);
        assert!(pinv_direct(&h).is_err());
        let w = pinv(&h, PinvMethod::Direct); // falls back to SVD
        assert_eq!(w.shape(), (2, 8));
        assert!(w.all_finite());
    }

    #[test]
    fn pinv_into_matches_pinv_both_methods_and_fallback() {
        let h = rand_channel(16, 4, 8);
        let mut s = PinvScratch::new(16, 4);
        let mut out = CMat::zeros(4, 16);
        for method in [PinvMethod::Direct, PinvMethod::Svd] {
            pinv_into(&h, method, &mut s, &mut out);
            assert!(out.max_abs_diff(&pinv(&h, method)) < 1e-6, "{method:?}");
        }
        // Rank-deficient channel: the scratch route must degrade to SVD
        // exactly like the allocating route.
        let base = rand_channel(8, 1, 4);
        let bad = CMat::from_fn(8, 2, |r, _| base[(r, 0)]);
        let mut s = PinvScratch::new(8, 2);
        let mut out = CMat::zeros(2, 8);
        pinv_into(&bad, PinvMethod::Direct, &mut s, &mut out);
        assert!(out.max_abs_diff(&pinv(&bad, PinvMethod::Direct)) < 1e-6);
    }

    #[test]
    fn normalize_in_place_matches_copying() {
        let h = rand_channel(12, 3, 13);
        let w = pinv_direct(&h).unwrap();
        let mut inplace = w.clone();
        normalize_precoder_in_place(&mut inplace);
        assert!(inplace.max_abs_diff(&normalize_precoder(&w)) < 1e-7);
        // All-zero precoder: no-op, no NaNs.
        let mut z = CMat::zeros(3, 12);
        normalize_precoder_in_place(&mut z);
        assert!(z.all_finite());
    }

    #[test]
    fn normalized_precoder_antenna_power_at_most_one() {
        let h = rand_channel(16, 4, 5);
        let w = normalize_precoder(&pinv_direct(&h).unwrap());
        for m in 0..w.cols() {
            let p: f32 = (0..w.rows()).map(|k| w[(k, m)].norm_sqr()).sum();
            assert!(p <= 1.0 + 1e-4, "antenna {m} power {p} > 1");
        }
    }

    #[test]
    fn cond_estimate_identity_near_one() {
        let h = CMat::identity(8);
        let c = cond_estimate(&h, 50);
        assert!(c < 1.5, "cond of identity estimated as {c}");
    }

    #[test]
    fn cond_estimate_tracks_svd_cond() {
        let h = rand_channel(32, 8, 6);
        let est = cond_estimate(&h, 100);
        let exact = svd(&h).cond();
        assert!(
            (est / exact).abs() > 0.5 && (est / exact).abs() < 2.0,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn conjugate_beamformer_is_hermitian_transpose() {
        let h = rand_channel(8, 3, 7);
        let w = conjugate_beamformer(&h);
        assert_eq!(w.shape(), (3, 8));
        assert!(w.max_abs_diff(&h.hermitian()) < 1e-7);
    }
}
