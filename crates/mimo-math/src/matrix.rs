//! Dense row-major complex matrices.
//!
//! The MIMO processing chain works with small-to-medium dense complex
//! matrices: the `M x K` channel matrix `H`, its `K x K` Gram matrix
//! `H^H H`, and the `K x M` zero-forcing detector. [`CMat`] is a simple
//! owned row-major container over [`Cf32`] with the operations those
//! pipelines need. Hot-path multiplication lives in [`crate::gemm`]; this
//! module holds construction, indexing, and structural transforms.

use crate::complex::Cf32;
use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense row-major matrix of [`Cf32`] elements.
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Cf32>,
}

impl CMat {
    /// Creates a zero-filled `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![Cf32::ZERO; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Cf32::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice of elements.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[Cf32]) -> Self {
        assert_eq!(data.len(), rows * cols, "element count must match shape");
        Self { rows, cols, data: data.to_vec() }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Cf32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True for `0 x 0` matrices.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major element slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[Cf32] {
        &self.data
    }

    /// Mutable row-major element slice.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [Cf32] {
        &mut self.data
    }

    /// Borrows row `r` as a contiguous slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[Cf32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [Cf32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a vector.
    pub fn col(&self, c: usize) -> Vec<Cf32> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Plain transpose `A^T`.
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Transpose into a caller-owned matrix (no allocation).
    ///
    /// # Panics
    /// Panics if `out` is not `cols x rows`.
    pub fn transpose_into(&self, out: &mut CMat) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose_into shape mismatch");
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Conjugate (Hermitian) transpose `A^H`.
    pub fn hermitian(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Hermitian transpose into a caller-owned matrix (no allocation).
    ///
    /// # Panics
    /// Panics if `out` is not `cols x rows`.
    pub fn hermitian_into(&self, out: &mut CMat) {
        assert_eq!(out.shape(), (self.cols, self.rows), "hermitian_into shape mismatch");
        crate::simd::conj_transpose(
            &self.data,
            self.rows,
            self.cols,
            &mut out.data,
            crate::simd::SimdTier::cached(),
        );
    }

    /// Copies another matrix's elements into this one (no allocation).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, src: &CMat) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Element-wise conjugate `A*`.
    pub fn conj(&self) -> CMat {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z = z.conj();
        }
        out
    }

    /// Scales every element by a real factor.
    pub fn scale(&self, s: f32) -> CMat {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z = z.scale(s);
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &CMat) -> CMat {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        out
    }

    /// Element-wise difference.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &CMat) -> CMat {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a -= *b;
        }
        out
    }

    /// Naive `O(n^3)` matrix product; small sizes and tests. For hot paths
    /// use [`crate::gemm::gemm`], which dispatches to specialised kernels.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Self::matmul`] into a caller-owned output matrix (no allocation),
    /// through the tier-dispatched GEMM kernels.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows` or `out` is not
    /// `self.rows x other.cols`.
    pub fn matmul_into(&self, other: &CMat, out: &mut CMat) {
        self.matmul_into_tier(other, out, crate::simd::SimdTier::cached());
    }

    /// [`Self::matmul_into`] with the SIMD dispatch tier pinned by the
    /// caller (ablations and parity tests). All tiers produce bit-equal
    /// results.
    pub fn matmul_into_tier(&self, other: &CMat, out: &mut CMat, tier: crate::simd::SimdTier) {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul_into shape mismatch");
        crate::gemm::gemm_with_tier(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
            tier,
        );
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols`.
    pub fn matvec(&self, x: &[Cf32]) -> Vec<Cf32> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        (0..self.rows)
            .map(|r| {
                self.row(r).iter().zip(x.iter()).fold(Cf32::ZERO, |acc, (&a, &b)| a.mul_add(b, acc))
            })
            .collect()
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn fro_norm(&self) -> f32 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f32>().sqrt()
    }

    /// Maximum absolute element difference against another matrix; the
    /// standard closeness metric in this workspace's tests.
    pub fn max_abs_diff(&self, other: &CMat) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (*a - *b).abs()).fold(0.0f32, f32::max)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }

    /// Gram matrix `A^H A` (`cols x cols`, Hermitian positive semidefinite).
    pub fn gram(&self) -> CMat {
        let mut g = CMat::zeros(self.cols, self.cols);
        self.gram_into(&mut g);
        g
    }

    /// [`Self::gram`] into a caller-owned output matrix (no allocation),
    /// through the tier-dispatched Gram kernel.
    ///
    /// # Panics
    /// Panics if `out` is not `cols x cols`.
    pub fn gram_into(&self, out: &mut CMat) {
        self.gram_into_tier(out, crate::simd::SimdTier::cached());
    }

    /// [`Self::gram_into`] with the SIMD dispatch tier pinned by the
    /// caller. All tiers produce bit-equal results.
    pub fn gram_into_tier(&self, out: &mut CMat, tier: crate::simd::SimdTier) {
        let n = self.cols;
        assert_eq!(out.shape(), (n, n), "gram_into shape mismatch");
        crate::gemm::gram_with_tier(self.rows, n, &self.data, &mut out.data, tier);
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Cf32;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &Cf32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Cf32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::approx_eq;

    fn sample() -> CMat {
        CMat::from_fn(3, 2, |r, c| Cf32::new(r as f32, c as f32 + 1.0))
    }

    #[test]
    fn zeros_and_identity() {
        let z = CMat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&e| e == Cf32::ZERO));
        let i = CMat::identity(3);
        assert_eq!(i[(1, 1)], Cf32::ONE);
        assert_eq!(i[(0, 1)], Cf32::ZERO);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = sample();
        let i3 = CMat::identity(3);
        let i2 = CMat::identity(2);
        assert!(i3.matmul(&a).max_abs_diff(&a) < 1e-6);
        assert!(a.matmul(&i2).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn hermitian_transpose_conjugates() {
        let a = sample();
        let ah = a.hermitian();
        assert_eq!(ah.shape(), (2, 3));
        assert!(approx_eq(ah[(1, 2)], a[(2, 1)].conj(), 1e-6));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = sample();
        assert!(a.transpose().transpose().max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = sample();
        let g = a.gram();
        let g_ref = a.hermitian().matmul(&a);
        assert!(g.max_abs_diff(&g_ref) < 1e-5);
        // Gram matrices are Hermitian.
        assert!(g.max_abs_diff(&g.hermitian()) < 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sample();
        let x = vec![Cf32::new(1.0, -1.0), Cf32::new(0.5, 2.0)];
        let y = a.matvec(&x);
        let xm = CMat::from_slice(2, 1, &x);
        let ym = a.matmul(&xm);
        for (i, &yi) in y.iter().enumerate() {
            assert!(approx_eq(yi, ym[(i, 0)], 1e-6));
        }
    }

    #[test]
    fn fro_norm_of_identity() {
        assert!((CMat::identity(4).fro_norm() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = sample();
        let b = a.scale(2.0);
        assert!(a.add(&b).sub(&b).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_match_allocating_versions() {
        let a = sample();
        let b = CMat::from_fn(2, 4, |r, c| Cf32::new(c as f32 - r as f32, 0.5));
        let mut t = CMat::zeros(2, 3);
        a.transpose_into(&mut t);
        assert!(t.max_abs_diff(&a.transpose()) < 1e-7);
        let mut h = CMat::zeros(2, 3);
        a.hermitian_into(&mut h);
        assert!(h.max_abs_diff(&a.hermitian()) < 1e-7);
        let mut p = CMat::from_fn(3, 4, |_, _| Cf32::new(9.0, 9.0)); // stale contents
        a.matmul_into(&b, &mut p);
        assert!(p.max_abs_diff(&a.matmul(&b)) < 1e-6);
        let mut g = CMat::from_fn(2, 2, |_, _| Cf32::ONE);
        a.gram_into(&mut g);
        assert!(g.max_abs_diff(&a.gram()) < 1e-6);
        let mut c = CMat::zeros(3, 2);
        c.copy_from(&a);
        assert!(c.max_abs_diff(&a) < 1e-7);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn transpose_into_rejects_wrong_shape() {
        let a = sample();
        let mut out = CMat::zeros(3, 2);
        a.transpose_into(&mut out);
    }

    #[test]
    fn row_and_col_access() {
        let a = sample();
        assert_eq!(a.row(1).len(), 2);
        assert_eq!(a.col(0).len(), 3);
        assert_eq!(a.col(1)[2], a[(2, 1)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_mat(rows: usize, cols: usize) -> impl Strategy<Value = CMat> {
        proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), rows * cols).prop_map(
            move |v| {
                CMat::from_fn(rows, cols, |r, c| {
                    let (re, im) = v[r * cols + c];
                    Cf32::new(re, im)
                })
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// (AB)C == A(BC) within float tolerance.
        #[test]
        fn matmul_is_associative(a in arb_mat(3, 4), b in arb_mat(4, 2), c in arb_mat(2, 5)) {
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            prop_assert!(left.max_abs_diff(&right) < 1e-2);
        }

        /// (AB)^H == B^H A^H.
        #[test]
        fn hermitian_reverses_products(a in arb_mat(3, 4), b in arb_mat(4, 2)) {
            let lhs = a.matmul(&b).hermitian();
            let rhs = b.hermitian().matmul(&a.hermitian());
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
        }

        /// The Gram matrix is Hermitian positive semidefinite: x^H G x >= 0.
        #[test]
        fn gram_is_psd(a in arb_mat(5, 3), x in proptest::collection::vec((-1.0f32..1.0, -1.0f32..1.0), 3)) {
            let g = a.gram();
            prop_assert!(g.max_abs_diff(&g.hermitian()) < 1e-3);
            let xv: Vec<Cf32> = x.iter().map(|&(re, im)| Cf32::new(re, im)).collect();
            let gx = g.matvec(&xv);
            let quad: Cf32 = xv.iter().zip(gx.iter()).map(|(a, b)| a.conj_mul(*b)).sum();
            prop_assert!(quad.re >= -1e-2, "x^H G x = {quad:?}");
        }

        /// Frobenius norm is submultiplicative: ||AB|| <= ||A|| ||B||.
        #[test]
        fn fro_norm_submultiplicative(a in arb_mat(4, 3), b in arb_mat(3, 4)) {
            let ab = a.matmul(&b).fro_norm();
            prop_assert!(ab <= a.fro_norm() * b.fro_norm() * (1.0 + 1e-4));
        }
    }
}
