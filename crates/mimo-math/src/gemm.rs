//! Complex matrix multiplication kernels.
//!
//! Equalization and precoding multiply a fixed-size detector/precoder matrix
//! against every data subcarrier of every symbol, so GEMM dominates the
//! per-subcarrier cost after LDPC. The paper accelerates this with Intel
//! MKL's JIT GEMM, which emits code specialised for the one `(M, K)` problem
//! size the cell uses. Our analogue of "JIT" is monomorphisation:
//! [`gemm_fixed`] is a const-generic kernel the compiler fully unrolls for
//! the given shape, and [`Gemm`] caches the dispatch decision, falling back
//! to the generic blocked kernel [`gemm`] for unusual shapes. The
//! generic-vs-specialised gap is what Table 4's "JIT matrix multiplication"
//! ablation row measures.

use crate::complex::Cf32;
use crate::matrix::CMat;

/// Generic row-major complex GEMM: `C = A * B`.
///
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`; all row-major. The loop
/// order (i, p, j) streams `b` and `c` rows contiguously, which
/// auto-vectorises well.
///
/// # Panics
/// Panics if slice lengths do not match the shapes.
pub fn gemm(m: usize, k: usize, n: usize, a: &[Cf32], b: &[Cf32], c: &mut [Cf32]) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    c.fill(Cf32::ZERO);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj = aip.mul_add(bj, *cj);
            }
        }
    }
}

/// Shape-specialised GEMM. The compiler monomorphises one copy per `(M, K,
/// N)` triple used in the program and unrolls the inner loops — the moral
/// equivalent of MKL's JIT-generated kernel for a fixed problem size.
///
/// # Panics
/// Panics if slice lengths do not match the const shapes.
#[inline]
pub fn gemm_fixed<const M: usize, const K: usize, const N: usize>(
    a: &[Cf32],
    b: &[Cf32],
    c: &mut [Cf32],
) {
    assert_eq!(a.len(), M * K, "A shape mismatch");
    assert_eq!(b.len(), K * N, "B shape mismatch");
    assert_eq!(c.len(), M * N, "C shape mismatch");
    for i in 0..M {
        let mut acc = [Cf32::ZERO; N];
        let arow = &a[i * K..(i + 1) * K];
        for p in 0..K {
            let aip = arow[p];
            let brow = &b[p * N..(p + 1) * N];
            for j in 0..N {
                acc[j] = aip.mul_add(brow[j], acc[j]);
            }
        }
        c[i * N..(i + 1) * N].copy_from_slice(&acc);
    }
}

/// GEMV specialised for the equalizer hot path: `y = A x` where `A` is
/// `m x k` row-major. Used when the "B" operand is a single subcarrier's
/// antenna vector.
#[inline]
pub fn gemv(m: usize, k: usize, a: &[Cf32], x: &[Cf32], y: &mut [Cf32]) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(x.len(), k, "x length mismatch");
    assert_eq!(y.len(), m, "y length mismatch");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut acc = Cf32::ZERO;
        for (&aij, &xj) in arow.iter().zip(x.iter()) {
            acc = aij.mul_add(xj, acc);
        }
        y[i] = acc;
    }
}

/// Which kernel a [`Gemm`] plan selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKernel {
    /// Generic three-loop kernel, any shape.
    Generic,
    /// Monomorphised fixed-shape kernel ("JIT" analogue).
    Specialized,
}

/// A small "planned GEMM" wrapper: resolves at construction whether a
/// specialised kernel exists for the problem shape, mirroring MKL's
/// `mkl_jit_create_cgemm` + `mkl_jit_get_cgemm_ptr` flow.
#[derive(Debug, Clone, Copy)]
pub struct Gemm {
    m: usize,
    k: usize,
    n: usize,
    kernel: GemmKernel,
    /// Allows ablations to force the generic path even when a specialised
    /// kernel exists (Table 4, "JIT matmul disabled").
    force_generic: bool,
}

impl Gemm {
    /// Plans a GEMM for `m x k times k x n`.
    pub fn plan(m: usize, k: usize, n: usize) -> Self {
        let kernel = if dispatch_fixed(m, k, n, None, None, None).is_some() {
            GemmKernel::Specialized
        } else {
            GemmKernel::Generic
        };
        Self { m, k, n, kernel, force_generic: false }
    }

    /// Plans a GEMM but pins it to the generic kernel (for ablations).
    pub fn plan_generic(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n, kernel: GemmKernel::Generic, force_generic: true }
    }

    /// The kernel this plan resolved to.
    pub fn kernel(&self) -> GemmKernel {
        if self.force_generic {
            GemmKernel::Generic
        } else {
            self.kernel
        }
    }

    /// Executes `C = A * B`.
    #[inline]
    pub fn run(&self, a: &[Cf32], b: &[Cf32], c: &mut [Cf32]) {
        if self.kernel() == GemmKernel::Specialized
            && dispatch_fixed(self.m, self.k, self.n, Some(a), Some(b), Some(c)).is_some()
        {
            return;
        }
        gemm(self.m, self.k, self.n, a, b, c);
    }

    /// Convenience wrapper over [`CMat`] operands.
    pub fn run_mat(&self, a: &CMat, b: &CMat) -> CMat {
        assert_eq!(a.shape(), (self.m, self.k));
        assert_eq!(b.shape(), (self.k, self.n));
        let mut c = CMat::zeros(self.m, self.n);
        self.run(a.as_slice(), b.as_slice(), c.as_mut_slice());
        c
    }
}

/// Dispatch table of monomorphised kernels for the MIMO shapes Agora's
/// evaluation uses: detector `K x M` against antenna blocks, precoder
/// `M x K` against user blocks, and the Gram/inverse products.
///
/// Called with `None` operands it only answers "is this shape specialised?".
fn dispatch_fixed(
    m: usize,
    k: usize,
    n: usize,
    a: Option<&[Cf32]>,
    b: Option<&[Cf32]>,
    c: Option<&mut [Cf32]>,
) -> Option<()> {
    macro_rules! table {
        ($(($mm:literal, $kk:literal, $nn:literal)),+ $(,)?) => {
            match (m, k, n) {
                $(
                    ($mm, $kk, $nn) => {
                        if let (Some(a), Some(b), Some(c)) = (a, b, c) {
                            gemm_fixed::<$mm, $kk, $nn>(a, b, c);
                        }
                        Some(())
                    }
                )+
                _ => None,
            }
        };
    }
    // Shapes: (users x antennas) * (antennas x batch) for equalization with
    // batch widths 1 and 8 (one cache line of subcarriers), Gram products,
    // and downlink precoding (antennas x users) * (users x batch).
    table!(
        // Equalization: detector (K x M) times received block (M x n).
        (16, 64, 1),
        (16, 64, 8),
        (8, 64, 1),
        (8, 64, 8),
        (16, 32, 1),
        (16, 32, 8),
        (4, 16, 1),
        (4, 16, 8),
        // Downlink precoding: precoder (M x K) times user block (K x n).
        (64, 16, 1),
        (64, 16, 8),
        (64, 8, 1),
        (64, 8, 8),
        (32, 16, 1),
        (32, 16, 8),
        (16, 4, 1),
        (16, 4, 8),
        // Detector assembly: (K x K) inverse times (K x M) Hermitian.
        (16, 16, 64),
        (8, 8, 64),
        (16, 16, 32),
        (4, 4, 16),
        // Gram: (K x M) times (M x K). ((8, 64, 8) is already covered by
        // the equalization section above.)
        (16, 64, 16),
        (16, 32, 16),
        (4, 16, 4),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CMat;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> CMat {
        // Deterministic pseudo-random fill without pulling in `rand` here.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        CMat::from_fn(rows, cols, |_, _| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 0.5
            };
            Cf32::new(next(), next())
        })
    }

    #[test]
    fn generic_matches_naive() {
        let a = rand_mat(5, 7, 1);
        let b = rand_mat(7, 3, 2);
        let mut c = vec![Cf32::ZERO; 15];
        gemm(5, 7, 3, a.as_slice(), b.as_slice(), &mut c);
        let c_ref = a.matmul(&b);
        let cm = CMat::from_slice(5, 3, &c);
        assert!(cm.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn fixed_matches_generic() {
        let a = rand_mat(16, 64, 3);
        let b = rand_mat(64, 8, 4);
        let mut c1 = vec![Cf32::ZERO; 16 * 8];
        let mut c2 = vec![Cf32::ZERO; 16 * 8];
        gemm(16, 64, 8, a.as_slice(), b.as_slice(), &mut c1);
        gemm_fixed::<16, 64, 8>(a.as_slice(), b.as_slice(), &mut c2);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((*x - *y).abs() < 1e-3);
        }
    }

    #[test]
    fn plan_selects_specialized_for_known_shapes() {
        assert_eq!(Gemm::plan(16, 64, 8).kernel(), GemmKernel::Specialized);
        assert_eq!(Gemm::plan(16, 64, 1).kernel(), GemmKernel::Specialized);
        assert_eq!(Gemm::plan(17, 64, 8).kernel(), GemmKernel::Generic);
    }

    #[test]
    fn plan_generic_forces_generic() {
        let g = Gemm::plan_generic(16, 64, 8);
        assert_eq!(g.kernel(), GemmKernel::Generic);
    }

    #[test]
    fn planned_run_matches_matmul() {
        let a = rand_mat(16, 64, 5);
        let b = rand_mat(64, 8, 6);
        let plan = Gemm::plan(16, 64, 8);
        let c = plan.run_mat(&a, &b);
        assert!(c.max_abs_diff(&a.matmul(&b)) < 1e-3);
    }

    #[test]
    fn gemv_matches_matvec() {
        let a = rand_mat(6, 9, 7);
        let x: Vec<Cf32> = rand_mat(9, 1, 8).as_slice().to_vec();
        let mut y = vec![Cf32::ZERO; 6];
        gemv(6, 9, a.as_slice(), &x, &mut y);
        let y_ref = a.matvec(&x);
        for (u, v) in y.iter().zip(y_ref.iter()) {
            assert!((*u - *v).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_inputs_give_zero_output() {
        let a = vec![Cf32::ZERO; 4 * 4];
        let b = vec![Cf32::ZERO; 4 * 4];
        let mut c = vec![Cf32::ONE; 16];
        gemm(4, 4, 4, &a, &b, &mut c);
        assert!(c.iter().all(|z| *z == Cf32::ZERO));
    }
}
