//! Complex matrix multiplication kernels.
//!
//! Equalization and precoding multiply a fixed-size detector/precoder matrix
//! against every data subcarrier of every symbol, so GEMM dominates the
//! per-subcarrier cost after LDPC. The paper accelerates this with Intel
//! MKL's JIT GEMM, which emits vectorized code specialised for the one
//! `(M, K)` problem size the cell uses. This module reproduces both halves
//! of that trick:
//!
//! * **Shape specialisation** ("JIT" analogue): [`gemm_fixed`] is a
//!   const-generic kernel the compiler fully unrolls for the given shape,
//!   and [`Gemm`] caches the dispatch decision at plan time. The
//!   generic-vs-specialised gap is what Table 4's "JIT matrix
//!   multiplication" ablation row measures.
//! * **Vectorization**: on the AVX2 [`SimdTier`], [`gemm`], [`gemv`] and
//!   [`gram`] route to the register-tiled kernels in `gemm_simd`, which are
//!   bit-identical to the scalar references ([`gemm_scalar`],
//!   [`gemv_scalar`], [`gram_scalar`]) — the engine's `simd_gemm` ablation
//!   toggles speed, never results.
//!
//! The free functions dispatch on [`SimdTier::cached`]; `_with_tier`
//! variants pin the tier for parity tests and ablations.

use crate::complex::Cf32;
use crate::matrix::CMat;
use crate::simd::SimdTier;

/// Generic row-major complex GEMM: `C = A * B`, dispatched to the best
/// kernel for the detected SIMD tier.
///
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`; all row-major.
///
/// # Panics
/// Panics if slice lengths do not match the shapes.
#[inline]
pub fn gemm(m: usize, k: usize, n: usize, a: &[Cf32], b: &[Cf32], c: &mut [Cf32]) {
    gemm_with_tier(m, k, n, a, b, c, SimdTier::cached());
}

/// [`gemm`] with the dispatch tier pinned by the caller.
pub fn gemm_with_tier(
    m: usize,
    k: usize,
    n: usize,
    a: &[Cf32],
    b: &[Cf32],
    c: &mut [Cf32],
    tier: SimdTier,
) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { crate::gemm_simd::gemm_avx2(m, k, n, a, b, c) },
        _ => gemm_scalar(m, k, n, a, b, c),
    }
}

/// Scalar reference GEMM. The loop order (i, p, j) streams `b` and `c`
/// rows contiguously; the AVX2 kernels reproduce its results bit for bit.
///
/// # Panics
/// Panics if slice lengths do not match the shapes.
pub fn gemm_scalar(m: usize, k: usize, n: usize, a: &[Cf32], b: &[Cf32], c: &mut [Cf32]) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    c.fill(Cf32::ZERO);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj = aip.mul_add(bj, *cj);
            }
        }
    }
}

/// Shape-specialised GEMM. The compiler monomorphises one copy per `(M, K,
/// N)` triple used in the program and unrolls the inner loops — the moral
/// equivalent of MKL's JIT-generated kernel for a fixed problem size.
/// Accumulation order matches [`gemm_scalar`], so results are bit-equal.
///
/// # Panics
/// Panics if slice lengths do not match the const shapes.
#[inline]
pub fn gemm_fixed<const M: usize, const K: usize, const N: usize>(
    a: &[Cf32],
    b: &[Cf32],
    c: &mut [Cf32],
) {
    assert_eq!(a.len(), M * K, "A shape mismatch");
    assert_eq!(b.len(), K * N, "B shape mismatch");
    assert_eq!(c.len(), M * N, "C shape mismatch");
    for i in 0..M {
        let mut acc = [Cf32::ZERO; N];
        let arow = &a[i * K..(i + 1) * K];
        for p in 0..K {
            let aip = arow[p];
            let brow = &b[p * N..(p + 1) * N];
            for j in 0..N {
                acc[j] = aip.mul_add(brow[j], acc[j]);
            }
        }
        c[i * N..(i + 1) * N].copy_from_slice(&acc);
    }
}

/// GEMV specialised for the equalizer hot path: `y = A x` where `A` is
/// `m x k` row-major. Used when the "B" operand is a single subcarrier's
/// antenna vector. Dispatches on the detected SIMD tier.
#[inline]
pub fn gemv(m: usize, k: usize, a: &[Cf32], x: &[Cf32], y: &mut [Cf32]) {
    gemv_with_tier(m, k, a, x, y, SimdTier::cached());
}

/// [`gemv`] with the dispatch tier pinned by the caller.
pub fn gemv_with_tier(m: usize, k: usize, a: &[Cf32], x: &[Cf32], y: &mut [Cf32], tier: SimdTier) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(x.len(), k, "x length mismatch");
    assert_eq!(y.len(), m, "y length mismatch");
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { crate::gemm_simd::gemv_avx2(m, k, a, x, y) },
        _ => gemv_scalar(m, k, a, x, y),
    }
}

/// Scalar reference GEMV (one sequential dot product per row).
pub fn gemv_scalar(m: usize, k: usize, a: &[Cf32], x: &[Cf32], y: &mut [Cf32]) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(x.len(), k, "x length mismatch");
    assert_eq!(y.len(), m, "y length mismatch");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut acc = Cf32::ZERO;
        for (&aij, &xj) in arow.iter().zip(x.iter()) {
            acc = aij.mul_add(xj, acc);
        }
        y[i] = acc;
    }
}

/// Gram matrix `out = A^H A` over row-major slices: `a` is `rows x cols`,
/// `out` is `cols x cols`. This is the ZF pseudo-inverse's first product.
/// Dispatches on the detected SIMD tier.
#[inline]
pub fn gram(rows: usize, cols: usize, a: &[Cf32], out: &mut [Cf32]) {
    gram_with_tier(rows, cols, a, out, SimdTier::cached());
}

/// [`gram`] with the dispatch tier pinned by the caller.
pub fn gram_with_tier(rows: usize, cols: usize, a: &[Cf32], out: &mut [Cf32], tier: SimdTier) {
    assert_eq!(a.len(), rows * cols, "A shape mismatch");
    assert_eq!(out.len(), cols * cols, "Gram output shape mismatch");
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { crate::gemm_simd::gram_avx2(rows, cols, a, out) },
        _ => gram_scalar(rows, cols, a, out),
    }
}

/// Scalar reference Gram product. Accumulates row-by-row so the inner
/// loops stream contiguously.
pub fn gram_scalar(rows: usize, cols: usize, a: &[Cf32], out: &mut [Cf32]) {
    assert_eq!(a.len(), rows * cols, "A shape mismatch");
    assert_eq!(out.len(), cols * cols, "Gram output shape mismatch");
    out.fill(Cf32::ZERO);
    for r in 0..rows {
        let row = &a[r * cols..(r + 1) * cols];
        for i in 0..cols {
            let ai = row[i].conj();
            let grow = &mut out[i * cols..(i + 1) * cols];
            for (gj, &aj) in grow.iter_mut().zip(row.iter()) {
                *gj = ai.mul_add(aj, *gj);
            }
        }
    }
}

/// Complex AXPY `y += alpha * x` over contiguous slices. Dispatches on
/// the detected SIMD tier; all tiers are bit-identical because the
/// update is purely elementwise (no cross-element accumulation).
#[inline]
pub fn caxpy(alpha: Cf32, x: &[Cf32], y: &mut [Cf32]) {
    caxpy_with_tier(alpha, x, y, SimdTier::cached());
}

/// [`caxpy`] with the dispatch tier pinned by the caller.
#[inline]
pub fn caxpy_with_tier(alpha: Cf32, x: &[Cf32], y: &mut [Cf32], tier: SimdTier) {
    assert_eq!(x.len(), y.len(), "caxpy length mismatch");
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { crate::gemm_simd::caxpy_avx2(alpha, x, y) },
        _ => caxpy_scalar(alpha, x, y),
    }
}

/// Scalar reference AXPY.
pub fn caxpy_scalar(alpha: Cf32, x: &[Cf32], y: &mut [Cf32]) {
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// Gram matrix `out = A^H A` when the caller already holds the conjugate
/// transpose: `a` is `rows x cols`, `ah` is `cols x rows` and must equal
/// `a^H` elementwise, `out` is `cols x cols`. Bit-identical to
/// [`gram`] / [`gram_scalar`] on `a`, but the AVX2 path walks both
/// operands contiguously and computes only the lower triangle (mirroring
/// the rest by conjugation), which is roughly 2x faster than the strided
/// [`gram`] kernel at ZF shapes. The ZF pseudo-inverse always has `a^H`
/// on hand — it is the right-hand side of the detector solve.
#[inline]
pub fn gram_pair(rows: usize, cols: usize, ah: &[Cf32], a: &[Cf32], out: &mut [Cf32]) {
    gram_pair_with_tier(rows, cols, ah, a, out, SimdTier::cached());
}

/// [`gram_pair`] with the dispatch tier pinned by the caller.
pub fn gram_pair_with_tier(
    rows: usize,
    cols: usize,
    ah: &[Cf32],
    a: &[Cf32],
    out: &mut [Cf32],
    tier: SimdTier,
) {
    assert_eq!(a.len(), rows * cols, "A shape mismatch");
    assert_eq!(ah.len(), cols * rows, "A^H shape mismatch");
    assert_eq!(out.len(), cols * cols, "Gram output shape mismatch");
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { crate::gemm_simd::gram_pair_avx2(rows, cols, ah, a, out) },
        _ => gram_scalar(rows, cols, a, out),
    }
}

/// Accumulating Gram product `out += A^H A` when the caller already holds
/// the conjugate transpose: `a` is `rows x cols`, `ah` is `cols x rows`
/// and must equal `a^H` elementwise, `out` is `cols x cols`. This is the
/// per-antenna-cluster partial-Gram kernel: each cluster's `H_i^H H_i`
/// folds into the running total in the scalar reference's sequential
/// order, so all tiers are bit-identical.
///
/// **Precondition**: the prior contents of `out` must be exactly
/// Hermitian bitwise — zero, or the result of previous Gram
/// accumulations. The AVX2 path accumulates only the lower triangle and
/// rebuilds the upper by conjugate mirroring, which matches direct upper
/// accumulation bit for bit only under that precondition (conjugation
/// distributes exactly over IEEE addition and the unfused products).
#[inline]
pub fn gram_accumulate(rows: usize, cols: usize, ah: &[Cf32], a: &[Cf32], out: &mut [Cf32]) {
    gram_accumulate_with_tier(rows, cols, ah, a, out, SimdTier::cached());
}

/// [`gram_accumulate`] with the dispatch tier pinned by the caller.
pub fn gram_accumulate_with_tier(
    rows: usize,
    cols: usize,
    ah: &[Cf32],
    a: &[Cf32],
    out: &mut [Cf32],
    tier: SimdTier,
) {
    assert_eq!(a.len(), rows * cols, "A shape mismatch");
    assert_eq!(ah.len(), cols * rows, "A^H shape mismatch");
    assert_eq!(out.len(), cols * cols, "Gram output shape mismatch");
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { crate::gemm_simd::gram_accumulate_avx2(rows, cols, ah, a, out) },
        _ => gram_accumulate_scalar(rows, cols, a, out),
    }
}

/// Scalar reference accumulating Gram product `out += A^H A`: the
/// [`gram_scalar`] body without the zero fill, so the row-major
/// accumulation continues from the prior contents of `out`.
pub fn gram_accumulate_scalar(rows: usize, cols: usize, a: &[Cf32], out: &mut [Cf32]) {
    assert_eq!(a.len(), rows * cols, "A shape mismatch");
    assert_eq!(out.len(), cols * cols, "Gram output shape mismatch");
    for r in 0..rows {
        let row = &a[r * cols..(r + 1) * cols];
        for i in 0..cols {
            let ai = row[i].conj();
            let grow = &mut out[i * cols..(i + 1) * cols];
            for (gj, &aj) in grow.iter_mut().zip(row.iter()) {
                *gj = ai.mul_add(aj, *gj);
            }
        }
    }
}

/// Deterministic reduction of per-cluster partial Grams: `parts` holds
/// `parts.len() / n` partials of `n` elements each, laid out
/// consecutively in cluster-index order, and `out` receives their sum as
/// a fixed left fold — `((p0 + p1) + p2) + ...` — so the f32 addition
/// order never depends on task completion order. Each step is a plain
/// elementwise complex add (no multiply, so no tier can perturb the
/// bits); at one cluster the reduce degenerates to a copy.
///
/// # Panics
/// Panics if `parts` is empty or its length is not a multiple of
/// `out.len()`.
pub fn gram_reduce(parts: &[Cf32], out: &mut [Cf32]) {
    let n = out.len();
    assert!(n > 0 && !parts.is_empty(), "gram_reduce needs at least one partial");
    assert_eq!(parts.len() % n, 0, "partials length must be a multiple of the Gram size");
    out.copy_from_slice(&parts[..n]);
    for part in parts.chunks_exact(n).skip(1) {
        for (o, &p) in out.iter_mut().zip(part.iter()) {
            *o += p;
        }
    }
}

/// Which kernel a [`Gemm`] plan selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKernel {
    /// Generic three-loop scalar kernel, any shape.
    Generic,
    /// Monomorphised fixed-shape scalar kernel ("JIT" analogue).
    Specialized,
    /// Register-tiled AVX2 kernel (any shape, bit-equal to the others).
    Avx2,
}

/// A small "planned GEMM" wrapper: resolves at construction which kernel
/// serves the problem shape — mirroring MKL's `mkl_jit_create_cgemm` +
/// `mkl_jit_get_cgemm_ptr` flow — *and* pins the SIMD tier, so the
/// equalize/precode inner loops pay no per-call feature detection or
/// shape-table probe.
#[derive(Debug, Clone, Copy)]
pub struct Gemm {
    m: usize,
    k: usize,
    n: usize,
    kernel: GemmKernel,
    /// Allows ablations to force the generic path even when a specialised
    /// kernel exists (Table 4, "JIT matmul disabled").
    force_generic: bool,
    tier: SimdTier,
}

impl Gemm {
    /// Plans a GEMM for `m x k times k x n` on the detected tier.
    pub fn plan(m: usize, k: usize, n: usize) -> Self {
        Self::plan_with_tier(m, k, n, SimdTier::cached())
    }

    /// Plans a GEMM with the dispatch tier pinned by the caller: AVX2
    /// takes the vector kernel; the scalar tier picks the monomorphised
    /// kernel when the shape is in the table, the generic loop otherwise.
    pub fn plan_with_tier(m: usize, k: usize, n: usize, tier: SimdTier) -> Self {
        let kernel = if tier == SimdTier::Avx2 && cfg!(target_arch = "x86_64") {
            GemmKernel::Avx2
        } else if dispatch_fixed(m, k, n, None, None, None).is_some() {
            GemmKernel::Specialized
        } else {
            GemmKernel::Generic
        };
        Self { m, k, n, kernel, force_generic: false, tier }
    }

    /// Plans a GEMM but pins it to the generic scalar kernel (the Table 4
    /// "JIT matmul disabled" floor).
    pub fn plan_generic(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n, kernel: GemmKernel::Generic, force_generic: true, tier: SimdTier::Scalar }
    }

    /// The kernel this plan resolved to.
    pub fn kernel(&self) -> GemmKernel {
        if self.force_generic {
            GemmKernel::Generic
        } else {
            self.kernel
        }
    }

    /// The SIMD tier this plan was built for.
    pub fn tier(&self) -> SimdTier {
        self.tier
    }

    /// Executes `C = A * B`.
    #[inline]
    pub fn run(&self, a: &[Cf32], b: &[Cf32], c: &mut [Cf32]) {
        #[cfg(target_arch = "x86_64")]
        if self.kernel() == GemmKernel::Avx2 {
            assert_eq!(a.len(), self.m * self.k, "A shape mismatch");
            assert_eq!(b.len(), self.k * self.n, "B shape mismatch");
            assert_eq!(c.len(), self.m * self.n, "C shape mismatch");
            unsafe { crate::gemm_simd::gemm_avx2(self.m, self.k, self.n, a, b, c) };
            return;
        }
        if self.kernel() == GemmKernel::Specialized
            && dispatch_fixed(self.m, self.k, self.n, Some(a), Some(b), Some(c)).is_some()
        {
            return;
        }
        gemm_scalar(self.m, self.k, self.n, a, b, c);
    }

    /// Convenience wrapper over [`CMat`] operands.
    pub fn run_mat(&self, a: &CMat, b: &CMat) -> CMat {
        assert_eq!(a.shape(), (self.m, self.k));
        assert_eq!(b.shape(), (self.k, self.n));
        let mut c = CMat::zeros(self.m, self.n);
        self.run(a.as_slice(), b.as_slice(), c.as_mut_slice());
        c
    }
}

/// Dispatch table of monomorphised kernels for the MIMO shapes Agora's
/// evaluation uses: detector `K x M` against antenna blocks, precoder
/// `M x K` against user blocks, and the Gram/inverse products.
///
/// Called with `None` operands it only answers "is this shape specialised?".
fn dispatch_fixed(
    m: usize,
    k: usize,
    n: usize,
    a: Option<&[Cf32]>,
    b: Option<&[Cf32]>,
    c: Option<&mut [Cf32]>,
) -> Option<()> {
    macro_rules! table {
        ($(($mm:literal, $kk:literal, $nn:literal)),+ $(,)?) => {
            match (m, k, n) {
                $(
                    ($mm, $kk, $nn) => {
                        if let (Some(a), Some(b), Some(c)) = (a, b, c) {
                            gemm_fixed::<$mm, $kk, $nn>(a, b, c);
                        }
                        Some(())
                    }
                )+
                _ => None,
            }
        };
    }
    // Shapes: (users x antennas) * (antennas x batch) for equalization with
    // batch widths 1 and 8 (one cache line of subcarriers), Gram products,
    // and downlink precoding (antennas x users) * (users x batch).
    table!(
        // Equalization: detector (K x M) times received block (M x n).
        (16, 64, 1),
        (16, 64, 8),
        (8, 64, 1),
        (8, 64, 8),
        (16, 32, 1),
        (16, 32, 8),
        (4, 16, 1),
        (4, 16, 8),
        // Downlink precoding: precoder (M x K) times user block (K x n).
        (64, 16, 1),
        (64, 16, 8),
        (64, 8, 1),
        (64, 8, 8),
        (32, 16, 1),
        (32, 16, 8),
        (16, 4, 1),
        (16, 4, 8),
        // Detector assembly: (K x K) inverse times (K x M) Hermitian.
        (16, 16, 64),
        (8, 8, 64),
        (16, 16, 32),
        (4, 4, 16),
        // Gram: (K x M) times (M x K). ((8, 64, 8) is already covered by
        // the equalization section above.)
        (16, 64, 16),
        (16, 32, 16),
        (4, 16, 4),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CMat;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> CMat {
        // Deterministic pseudo-random fill without pulling in `rand` here.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        CMat::from_fn(rows, cols, |_, _| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 0.5
            };
            Cf32::new(next(), next())
        })
    }

    fn bits(c: &[Cf32]) -> Vec<(u32, u32)> {
        c.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
    }

    #[test]
    fn generic_matches_naive() {
        let a = rand_mat(5, 7, 1);
        let b = rand_mat(7, 3, 2);
        let mut c = vec![Cf32::ZERO; 15];
        gemm(5, 7, 3, a.as_slice(), b.as_slice(), &mut c);
        let c_ref = a.matmul(&b);
        let cm = CMat::from_slice(5, 3, &c);
        assert!(cm.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn fixed_matches_generic() {
        let a = rand_mat(16, 64, 3);
        let b = rand_mat(64, 8, 4);
        let mut c1 = vec![Cf32::ZERO; 16 * 8];
        let mut c2 = vec![Cf32::ZERO; 16 * 8];
        gemm_scalar(16, 64, 8, a.as_slice(), b.as_slice(), &mut c1);
        gemm_fixed::<16, 64, 8>(a.as_slice(), b.as_slice(), &mut c2);
        // The monomorphised kernel shares the scalar association: bit-equal.
        assert_eq!(bits(&c1), bits(&c2));
    }

    #[test]
    fn plan_selects_specialized_for_known_shapes() {
        let t = SimdTier::Scalar;
        assert_eq!(Gemm::plan_with_tier(16, 64, 8, t).kernel(), GemmKernel::Specialized);
        assert_eq!(Gemm::plan_with_tier(16, 64, 1, t).kernel(), GemmKernel::Specialized);
        assert_eq!(Gemm::plan_with_tier(17, 64, 8, t).kernel(), GemmKernel::Generic);
    }

    #[test]
    fn plan_caches_tier_at_plan_time() {
        let g = Gemm::plan_with_tier(16, 64, 8, SimdTier::Scalar);
        assert_eq!(g.tier(), SimdTier::Scalar);
        let auto = Gemm::plan(16, 64, 8);
        assert_eq!(auto.tier(), SimdTier::cached());
        if SimdTier::cached() == SimdTier::Avx2 {
            assert_eq!(auto.kernel(), GemmKernel::Avx2);
        }
    }

    #[test]
    fn plan_generic_forces_generic() {
        let g = Gemm::plan_generic(16, 64, 8);
        assert_eq!(g.kernel(), GemmKernel::Generic);
        assert_eq!(g.tier(), SimdTier::Scalar);
    }

    #[test]
    fn planned_run_matches_matmul() {
        let a = rand_mat(16, 64, 5);
        let b = rand_mat(64, 8, 6);
        let plan = Gemm::plan(16, 64, 8);
        let c = plan.run_mat(&a, &b);
        assert!(c.max_abs_diff(&a.matmul(&b)) < 1e-3);
    }

    #[test]
    fn all_plan_kernels_bit_agree() {
        let a = rand_mat(16, 64, 9);
        let b = rand_mat(64, 8, 10);
        let mut generic = vec![Cf32::ZERO; 16 * 8];
        let mut special = vec![Cf32::ZERO; 16 * 8];
        let mut tiered = vec![Cf32::ZERO; 16 * 8];
        Gemm::plan_generic(16, 64, 8).run(a.as_slice(), b.as_slice(), &mut generic);
        Gemm::plan_with_tier(16, 64, 8, SimdTier::Scalar).run(
            a.as_slice(),
            b.as_slice(),
            &mut special,
        );
        Gemm::plan(16, 64, 8).run(a.as_slice(), b.as_slice(), &mut tiered);
        assert_eq!(bits(&generic), bits(&special));
        assert_eq!(bits(&generic), bits(&tiered));
    }

    #[test]
    fn gemv_matches_matvec() {
        let a = rand_mat(6, 9, 7);
        let x: Vec<Cf32> = rand_mat(9, 1, 8).as_slice().to_vec();
        let mut y = vec![Cf32::ZERO; 6];
        gemv(6, 9, a.as_slice(), &x, &mut y);
        let y_ref = a.matvec(&x);
        for (u, v) in y.iter().zip(y_ref.iter()) {
            assert!((*u - *v).abs() < 1e-4);
        }
    }

    #[test]
    fn gram_free_fn_matches_method() {
        let a = rand_mat(12, 5, 11);
        let mut g = vec![Cf32::ZERO; 25];
        gram(12, 5, a.as_slice(), &mut g);
        let g_ref = a.gram();
        assert_eq!(bits(&g), bits(g_ref.as_slice()));
    }

    #[test]
    fn zero_inputs_give_zero_output() {
        let a = vec![Cf32::ZERO; 4 * 4];
        let b = vec![Cf32::ZERO; 4 * 4];
        let mut c = vec![Cf32::ONE; 16];
        gemm(4, 4, 4, &a, &b, &mut c);
        assert!(c.iter().all(|z| *z == Cf32::ZERO));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn fill(len: usize, seed: u64) -> Vec<Cf32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 11) as f32 / (1u64 << 53) as f32) * 4.0 - 1.0
                };
                Cf32::new(next(), next())
            })
            .collect()
    }

    fn bits(c: &[Cf32]) -> Vec<(u32, u32)> {
        c.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Scalar and AVX2 GEMM agree to the bit over the engine's shape
        /// range, including non-multiple-of-4 row/column tails.
        #[test]
        fn gemm_tier_parity(m in 4usize..64, k in 4usize..64, n in 1usize..12, seed in 0u64..1024) {
            let a = fill(m * k, seed);
            let b = fill(k * n, seed ^ 0xABCD);
            let mut c_scalar = vec![Cf32::ZERO; m * n];
            let mut c_simd = vec![Cf32::ONE; m * n]; // stale contents must be overwritten
            gemm_with_tier(m, k, n, &a, &b, &mut c_scalar, SimdTier::Scalar);
            gemm_with_tier(m, k, n, &a, &b, &mut c_simd, SimdTier::detect());
            prop_assert_eq!(bits(&c_scalar), bits(&c_simd));
        }

        /// Scalar and AVX2 GEMV agree to the bit, including `m % 4` tail
        /// rows and packing-tile (`k > 64`) boundaries.
        #[test]
        fn gemv_tier_parity(m in 1usize..80, k in 1usize..80, seed in 0u64..1024) {
            let a = fill(m * k, seed);
            let x = fill(k, seed ^ 0x5u64);
            let mut y_scalar = vec![Cf32::ZERO; m];
            let mut y_simd = vec![Cf32::ONE; m];
            gemv_with_tier(m, k, &a, &x, &mut y_scalar, SimdTier::Scalar);
            gemv_with_tier(m, k, &a, &x, &mut y_simd, SimdTier::detect());
            prop_assert_eq!(bits(&y_scalar), bits(&y_simd));
        }

        /// Scalar and AVX2 Gram products agree to the bit (conjugation via
        /// sign-flipped broadcast).
        #[test]
        fn gram_tier_parity(rows in 4usize..64, cols in 4usize..64, seed in 0u64..1024) {
            let a = fill(rows * cols, seed);
            let mut g_scalar = vec![Cf32::ZERO; cols * cols];
            let mut g_simd = vec![Cf32::ONE; cols * cols];
            gram_with_tier(rows, cols, &a, &mut g_scalar, SimdTier::Scalar);
            gram_with_tier(rows, cols, &a, &mut g_simd, SimdTier::detect());
            prop_assert_eq!(bits(&g_scalar), bits(&g_simd));
        }

        /// Scalar and AVX2 AXPY agree to the bit, including tails shorter
        /// than one vector.
        #[test]
        fn caxpy_tier_parity(n in 1usize..80, seed in 0u64..1024) {
            let alpha = fill(1, seed ^ 0xA1FA)[0];
            let x = fill(n, seed);
            let mut y_scalar = fill(n, seed ^ 0x77);
            let mut y_simd = y_scalar.clone();
            caxpy_with_tier(alpha, &x, &mut y_scalar, SimdTier::Scalar);
            caxpy_with_tier(alpha, &x, &mut y_simd, SimdTier::detect());
            prop_assert_eq!(bits(&y_scalar), bits(&y_simd));
        }

        /// The paired (lower-triangle + conjugate mirror) Gram kernel is
        /// bit-identical to the scalar full Gram, including `cols` that
        /// are not a multiple of the tile width and `cols = 1`.
        #[test]
        fn gram_pair_tier_parity(rows in 1usize..64, cols in 1usize..24, seed in 0u64..1024) {
            let a = fill(rows * cols, seed);
            let mut ah = vec![Cf32::ZERO; cols * rows];
            for r in 0..rows {
                for c in 0..cols {
                    ah[c * rows + r] = a[r * cols + c].conj();
                }
            }
            let mut g_scalar = vec![Cf32::ZERO; cols * cols];
            let mut g_simd = vec![Cf32::ONE; cols * cols];
            gram_pair_with_tier(rows, cols, &ah, &a, &mut g_scalar, SimdTier::Scalar);
            gram_pair_with_tier(rows, cols, &ah, &a, &mut g_simd, SimdTier::detect());
            prop_assert_eq!(bits(&g_scalar), bits(&g_simd));
        }

        /// Scalar and AVX2 accumulating Gram products agree to the bit
        /// when folding into a bitwise-Hermitian prior (the kernel's
        /// documented precondition), including odd shapes and `cols = 1`.
        #[test]
        fn gram_accumulate_tier_parity(rows in 1usize..64, cols in 1usize..24, seed in 0u64..1024) {
            let a = fill(rows * cols, seed);
            let mut ah = vec![Cf32::ZERO; cols * rows];
            for r in 0..rows {
                for c in 0..cols {
                    ah[c * rows + r] = a[r * cols + c].conj();
                }
            }
            // Exactly Hermitian prior: random lower triangle mirrored by
            // conjugation, random diagonal.
            let lower = fill(cols * cols, seed ^ 0xBEEF);
            let mut prior = vec![Cf32::ZERO; cols * cols];
            for i in 0..cols {
                prior[i * cols + i] = lower[i * cols + i];
                for j in 0..i {
                    prior[i * cols + j] = lower[i * cols + j];
                    prior[j * cols + i] = lower[i * cols + j].conj();
                }
            }
            let mut g_scalar = prior.clone();
            let mut g_simd = prior;
            gram_accumulate_with_tier(rows, cols, &ah, &a, &mut g_scalar, SimdTier::Scalar);
            gram_accumulate_with_tier(rows, cols, &ah, &a, &mut g_simd, SimdTier::detect());
            prop_assert_eq!(bits(&g_scalar), bits(&g_simd));
        }

        /// Antenna-cluster partitioned Gram: per-cluster partial Grams
        /// tree-reduced in fixed cluster-index order match the same fold
        /// computed entirely at the scalar tier bit for bit, over odd
        /// row/column shapes and cluster counts that do not divide the
        /// row count evenly (including empty tail clusters). At one
        /// cluster the fold degenerates to the monolithic Gram and is
        /// bit-identical to [`gram_with_tier`]; at any count it matches
        /// the monolithic result to rounding.
        #[test]
        fn clustered_gram_reduce_matches_monolithic(
            rows in 1usize..96,
            cols in 1usize..20,
            clusters in 1usize..8,
            seed in 0u64..1024,
        ) {
            let a = fill(rows * cols, seed);
            let base = rows / clusters;
            let rem = rows % clusters;
            let fold = |tier: SimdTier| -> Vec<Cf32> {
                let mut parts = vec![Cf32::ZERO; clusters * cols * cols];
                let mut r0 = 0usize;
                for c in 0..clusters {
                    let rc = base + usize::from(c < rem);
                    let slice = &a[r0 * cols..(r0 + rc) * cols];
                    let mut ah = vec![Cf32::ZERO; cols * rc];
                    for r in 0..rc {
                        for j in 0..cols {
                            ah[j * rc + r] = slice[r * cols + j].conj();
                        }
                    }
                    let part = &mut parts[c * cols * cols..(c + 1) * cols * cols];
                    gram_accumulate_with_tier(rc, cols, &ah, slice, part, tier);
                    r0 += rc;
                }
                let mut out = vec![Cf32::ZERO; cols * cols];
                gram_reduce(&parts, &mut out);
                out
            };
            let g_scalar = fold(SimdTier::Scalar);
            let g_simd = fold(SimdTier::detect());
            prop_assert_eq!(bits(&g_scalar), bits(&g_simd));
            let mut g_mono = vec![Cf32::ZERO; cols * cols];
            gram_with_tier(rows, cols, &a, &mut g_mono, SimdTier::detect());
            if clusters == 1 {
                prop_assert_eq!(bits(&g_simd), bits(&g_mono));
            }
            for (x, y) in g_simd.iter().zip(g_mono.iter()) {
                prop_assert!((*x - *y).abs() < 1e-2);
            }
        }

        /// Planned AVX2 execution equals the scalar planned kernel bit for
        /// bit on arbitrary (unspecialised) shapes too.
        #[test]
        fn plan_tier_parity(m in 1usize..40, k in 1usize..40, n in 1usize..12, seed in 0u64..1024) {
            let a = fill(m * k, seed);
            let b = fill(k * n, seed ^ 0xF00D);
            let mut c_scalar = vec![Cf32::ZERO; m * n];
            let mut c_simd = vec![Cf32::ZERO; m * n];
            Gemm::plan_with_tier(m, k, n, SimdTier::Scalar).run(&a, &b, &mut c_scalar);
            Gemm::plan_with_tier(m, k, n, SimdTier::detect()).run(&a, &b, &mut c_simd);
            prop_assert_eq!(bits(&c_scalar), bits(&c_simd));
        }
    }
}
