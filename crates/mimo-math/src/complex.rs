//! Single-precision complex arithmetic.
//!
//! Baseband processing operates almost exclusively on 32-bit complex floats
//! (IQ samples, channel coefficients, constellation points). The paper's C++
//! implementation uses `std::complex<float>` plus hand-written AVX kernels;
//! this module provides the scalar type, [`Cf32`], with the full operator
//! surface the rest of the workspace needs. A double-precision twin,
//! [`Cf64`], exists for high-accuracy reference computations in tests and
//! for the accumulation steps of the Jacobi SVD.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` components, `repr(C)` so that a slice of
/// `Cf32` is layout-compatible with interleaved I/Q sample buffers.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Cf32 {
    /// Real (in-phase) component.
    pub re: f32,
    /// Imaginary (quadrature) component.
    pub im: f32,
}

/// A complex number with `f64` components, used for reference math in tests
/// and numerically sensitive accumulations.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Cf64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

macro_rules! impl_complex {
    ($name:ident, $t:ty) => {
        impl $name {
            /// The additive identity.
            pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
            /// The multiplicative identity.
            pub const ONE: Self = Self { re: 1.0, im: 0.0 };
            /// The imaginary unit.
            pub const I: Self = Self { re: 0.0, im: 1.0 };

            /// Creates a complex number from rectangular components.
            #[inline(always)]
            pub const fn new(re: $t, im: $t) -> Self {
                Self { re, im }
            }

            /// Creates a purely real complex number.
            #[inline(always)]
            pub const fn real(re: $t) -> Self {
                Self { re, im: 0.0 }
            }

            /// Creates a complex number from polar form `r * e^{i theta}`.
            #[inline]
            pub fn from_polar(r: $t, theta: $t) -> Self {
                Self { re: r * theta.cos(), im: r * theta.sin() }
            }

            /// Returns `e^{i theta}`, a unit-magnitude phasor.
            #[inline]
            pub fn cis(theta: $t) -> Self {
                Self::from_polar(1.0, theta)
            }

            /// Complex conjugate.
            #[inline(always)]
            pub fn conj(self) -> Self {
                Self { re: self.re, im: -self.im }
            }

            /// Squared magnitude `|z|^2` (avoids the square root).
            #[inline(always)]
            pub fn norm_sqr(self) -> $t {
                self.re * self.re + self.im * self.im
            }

            /// Magnitude `|z|`.
            #[inline]
            pub fn abs(self) -> $t {
                self.norm_sqr().sqrt()
            }

            /// Argument (phase) in radians, in `(-pi, pi]`.
            #[inline]
            pub fn arg(self) -> $t {
                self.im.atan2(self.re)
            }

            /// Multiplicative inverse `1/z`. Returns non-finite components
            /// when `z` is zero, matching IEEE float division semantics.
            #[inline]
            pub fn inv(self) -> Self {
                let d = self.norm_sqr();
                Self { re: self.re / d, im: -self.im / d }
            }

            /// Fused multiply-add: `self * b + c`.
            #[inline(always)]
            pub fn mul_add(self, b: Self, c: Self) -> Self {
                Self {
                    re: self.re * b.re - self.im * b.im + c.re,
                    im: self.re * b.im + self.im * b.re + c.im,
                }
            }

            /// `conj(self) * b`, the kernel of Hermitian inner products.
            #[inline(always)]
            pub fn conj_mul(self, b: Self) -> Self {
                Self { re: self.re * b.re + self.im * b.im, im: self.re * b.im - self.im * b.re }
            }

            /// Scales by a real factor.
            #[inline(always)]
            pub fn scale(self, s: $t) -> Self {
                Self { re: self.re * s, im: self.im * s }
            }

            /// True if both components are finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.re.is_finite() && self.im.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, o: Self) -> Self {
                Self { re: self.re + o.re, im: self.im + o.im }
            }
        }
        impl Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, o: Self) -> Self {
                Self { re: self.re - o.re, im: self.im - o.im }
            }
        }
        impl Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, o: Self) -> Self {
                Self { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
            }
        }
        impl Div for $name {
            type Output = Self;
            #[inline]
            // Complex division IS multiplication by the inverse.
            #[allow(clippy::suspicious_arithmetic_impl)]
            fn div(self, o: Self) -> Self {
                self * o.inv()
            }
        }
        impl Mul<$t> for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, s: $t) -> Self {
                self.scale(s)
            }
        }
        impl Div<$t> for $name {
            type Output = Self;
            #[inline(always)]
            fn div(self, s: $t) -> Self {
                Self { re: self.re / s, im: self.im / s }
            }
        }
        impl Neg for $name {
            type Output = Self;
            #[inline(always)]
            fn neg(self) -> Self {
                Self { re: -self.re, im: -self.im }
            }
        }
        impl AddAssign for $name {
            #[inline(always)]
            fn add_assign(&mut self, o: Self) {
                *self = *self + o;
            }
        }
        impl SubAssign for $name {
            #[inline(always)]
            fn sub_assign(&mut self, o: Self) {
                *self = *self - o;
            }
        }
        impl MulAssign for $name {
            #[inline(always)]
            fn mul_assign(&mut self, o: Self) {
                *self = *self * o;
            }
        }
        impl DivAssign for $name {
            #[inline]
            fn div_assign(&mut self, o: Self) {
                *self = *self / o;
            }
        }
        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }
        impl From<$t> for $name {
            #[inline]
            fn from(re: $t) -> Self {
                Self::real(re)
            }
        }
        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.im >= 0.0 {
                    write!(f, "{}+{}i", self.re, self.im)
                } else {
                    write!(f, "{}{}i", self.re, self.im)
                }
            }
        }
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

impl_complex!(Cf32, f32);
impl_complex!(Cf64, f64);

impl Cf32 {
    /// Widens to double precision.
    #[inline]
    pub fn to_f64(self) -> Cf64 {
        Cf64 { re: self.re as f64, im: self.im as f64 }
    }
}

impl Cf64 {
    /// Narrows to single precision.
    #[inline]
    pub fn to_f32(self) -> Cf32 {
        Cf32 { re: self.re as f32, im: self.im as f32 }
    }
}

/// Approximate equality helper for tests: true when both components differ
/// by at most `tol`.
#[inline]
pub fn approx_eq(a: Cf32, b: Cf32, tol: f32) -> bool {
    (a.re - b.re).abs() <= tol && (a.im - b.im).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Cf32::new(1.0, 2.0).re, 1.0);
        assert_eq!(Cf32::new(1.0, 2.0).im, 2.0);
        assert_eq!(Cf32::ZERO + Cf32::ONE, Cf32::ONE);
        assert_eq!(Cf32::I * Cf32::I, -Cf32::ONE);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Cf32::from_polar(2.0, 0.5);
        assert!((z.abs() - 2.0).abs() < 1e-6);
        assert!((z.arg() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mul_matches_expanded_form() {
        let a = Cf32::new(1.0, 2.0);
        let b = Cf32::new(3.0, -4.0);
        let c = a * b;
        assert!(approx_eq(c, Cf32::new(11.0, 2.0), 1e-6));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Cf32::new(1.5, -2.5);
        let b = Cf32::new(0.3, 0.7);
        let q = (a * b) / b;
        assert!(approx_eq(q, a, 1e-5));
    }

    #[test]
    fn conj_mul_is_hermitian_product() {
        let a = Cf32::new(1.0, 2.0);
        let b = Cf32::new(3.0, 4.0);
        assert!(approx_eq(a.conj_mul(b), a.conj() * b, 1e-6));
    }

    #[test]
    fn inv_of_unit_is_conj() {
        let z = Cf32::cis(1.2);
        assert!(approx_eq(z.inv(), z.conj(), 1e-6));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Cf32::new(0.5, -1.0);
        let b = Cf32::new(2.0, 3.0);
        let c = Cf32::new(-1.0, 0.25);
        assert!(approx_eq(a.mul_add(b, c), a * b + c, 1e-6));
    }

    #[test]
    fn sum_accumulates() {
        let v = [Cf32::new(1.0, 1.0); 4];
        let s: Cf32 = v.iter().copied().sum();
        assert!(approx_eq(s, Cf32::new(4.0, 4.0), 1e-6));
    }

    #[test]
    fn f64_roundtrip() {
        let z = Cf32::new(0.125, -0.5);
        assert_eq!(z.to_f64().to_f32(), z);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Cf32::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{:?}", Cf32::new(1.0, 2.0)), "1+2i");
    }
}
