//! # agora-mac — a minimal MAC layer above the Agora PHY
//!
//! The paper's baseband hands decoded bits up to "the MAC" and takes
//! downlink bits from it (Figure 1b) without specifying one. This crate
//! provides the smallest MAC that makes the PHY *usable*: byte-oriented
//! transport blocks segmented into the per-(symbol, user) code blocks
//! the engine processes, with CRC-24A end-to-end integrity and loss-
//! tolerant reassembly.
//!
//! * [`segment`]: transport block → per-symbol code-block payloads.
//! * [`reassemble`]: decoded code blocks → transport block + CRC verdict.
//! * [`pack_bits`] / [`unpack_bits`]: byte ↔ LSB-first bit conversion.

pub mod segment;

pub use segment::{
    pack_bits, reassemble, segment, unpack_bits, ReassembleError, Segmenter, TransportBlock,
};
