//! Transport-block segmentation and reassembly.
//!
//! The engine's unit of decoding is one code block per (symbol, user)
//! ("our current implementation supports only up to one code block per
//! symbol", §4). A MAC transport block — an IP packet, say — is usually
//! larger than one code block, so it must be segmented across the
//! frame's data symbols and reassembled at the far end:
//!
//! ```text
//! TB bytes -> [CRC-24A] -> bits -> [seg 0 | seg 1 | ... | seg n-1]
//!                                    |        |             |
//!                                 symbol0  symbol1  ...  symbol n-1
//! ```
//!
//! Each segment is padded to the code block's information length; a
//! 16-bit length prefix lets the receiver strip the padding.

use agora_ldpc::crc::CRC_BITS;
use agora_ldpc::{attach_crc, check_crc};
use agora_phy::frame::CellConfig;

/// A MAC transport block: an opaque byte payload for one user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportBlock {
    /// Payload bytes.
    pub data: Vec<u8>,
}

impl TransportBlock {
    /// Wraps bytes in a transport block.
    pub fn new(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Expands bytes to LSB-first bits (one bit per output byte).
pub fn unpack_bits(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            out.push((b >> i) & 1);
        }
    }
    out
}

/// Packs LSB-first bits (one per byte) back into bytes; the bit count
/// must be a multiple of 8.
pub fn pack_bits(bits: &[u8]) -> Vec<u8> {
    assert_eq!(bits.len() % 8, 0, "bit count must be a multiple of 8");
    bits.chunks_exact(8)
        .map(|c| c.iter().enumerate().fold(0u8, |acc, (i, &b)| acc | ((b & 1) << i)))
        .collect()
}

/// Reassembly failure reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassembleError {
    /// A segment whose decode failed (engine flag) was encountered.
    SegmentLost {
        /// Index of the first missing/bad segment.
        segment: usize,
    },
    /// The length prefix is inconsistent with the segment budget.
    BadLength,
    /// The end-to-end CRC-24A failed.
    CrcMismatch,
}

impl core::fmt::Display for ReassembleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReassembleError::SegmentLost { segment } => write!(f, "segment {segment} lost"),
            ReassembleError::BadLength => write!(f, "length prefix out of range"),
            ReassembleError::CrcMismatch => write!(f, "transport block CRC mismatch"),
        }
    }
}

impl std::error::Error for ReassembleError {}

/// Bits of the length prefix (transport blocks up to 8 KiB).
const LEN_BITS: usize = 16;

/// Segmentation planner for one cell configuration and one user.
#[derive(Debug, Clone)]
pub struct Segmenter {
    /// Information bits per code block (one per data symbol).
    info_bits: usize,
    /// Data symbols per frame.
    segments: usize,
}

impl Segmenter {
    /// Builds a segmenter for a cell (uplink symbols carry the TB).
    pub fn for_cell(cell: &CellConfig) -> Self {
        Self {
            info_bits: cell.info_bits_per_symbol(),
            segments: cell.schedule.uplink_indices().len(),
        }
    }

    /// Builds a segmenter from raw parameters.
    pub fn new(info_bits_per_segment: usize, segments: usize) -> Self {
        assert!(info_bits_per_segment > LEN_BITS);
        assert!(segments > 0);
        Self { info_bits: info_bits_per_segment, segments }
    }

    /// Maximum transport-block payload size in bytes that fits one frame
    /// (after the length prefix and CRC).
    pub fn max_payload_bytes(&self) -> usize {
        (self.info_bits * self.segments - LEN_BITS - CRC_BITS) / 8
    }

    /// Segments a transport block into per-symbol code-block payloads
    /// (each `info_bits` long, bit-per-byte), ready for LDPC encoding.
    ///
    /// Layout: `[len:16][payload bits][CRC:24][zero padding]` spread
    /// across `segments` blocks in order.
    ///
    /// # Panics
    /// Panics if the payload exceeds [`Self::max_payload_bytes`].
    pub fn segment(&self, tb: &TransportBlock) -> Vec<Vec<u8>> {
        assert!(
            tb.data.len() <= self.max_payload_bytes(),
            "transport block {} B exceeds frame capacity {} B",
            tb.data.len(),
            self.max_payload_bytes()
        );
        let mut bits = Vec::with_capacity(self.info_bits * self.segments);
        // 16-bit LSB-first length prefix (in bytes).
        let len = tb.data.len() as u16;
        for i in 0..LEN_BITS {
            bits.push(((len >> i) & 1) as u8);
        }
        bits.extend(unpack_bits(&tb.data));
        // End-to-end CRC over prefix + payload.
        let crc_input = bits.clone();
        bits = attach_crc(&crc_input);
        bits.resize(self.info_bits * self.segments, 0);
        bits.chunks(self.info_bits).map(|c| c.to_vec()).collect()
    }

    /// Reassembles decoded code blocks into the transport block,
    /// verifying per-segment decode flags and the end-to-end CRC.
    pub fn reassemble(
        &self,
        segments: &[(Vec<u8>, bool)],
    ) -> Result<TransportBlock, ReassembleError> {
        assert_eq!(segments.len(), self.segments, "segment count mismatch");
        let mut bits = Vec::with_capacity(self.info_bits * self.segments);
        for (i, (seg, ok)) in segments.iter().enumerate() {
            if !ok {
                return Err(ReassembleError::SegmentLost { segment: i });
            }
            assert_eq!(seg.len(), self.info_bits, "segment {i} length mismatch");
            bits.extend_from_slice(seg);
        }
        // Length prefix.
        let mut len = 0u16;
        for (i, &b) in bits[..LEN_BITS].iter().enumerate() {
            len |= ((b & 1) as u16) << i;
        }
        let payload_bits = len as usize * 8;
        let framed_end = LEN_BITS + payload_bits + CRC_BITS;
        if framed_end > bits.len() {
            return Err(ReassembleError::BadLength);
        }
        if !check_crc(&bits[..framed_end]) {
            return Err(ReassembleError::CrcMismatch);
        }
        Ok(TransportBlock::new(pack_bits(&bits[LEN_BITS..LEN_BITS + payload_bits])))
    }
}

/// One-shot convenience: segment a transport block for a cell.
pub fn segment(cell: &CellConfig, tb: &TransportBlock) -> Vec<Vec<u8>> {
    Segmenter::for_cell(cell).segment(tb)
}

/// One-shot convenience: reassemble decoded blocks for a cell.
pub fn reassemble(
    cell: &CellConfig,
    segments: &[(Vec<u8>, bool)],
) -> Result<TransportBlock, ReassembleError> {
    Segmenter::for_cell(cell).reassemble(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segmenter {
        Segmenter::new(120, 4)
    }

    #[test]
    fn bits_roundtrip() {
        let bytes = vec![0x00, 0xFF, 0xA5, 0x3C];
        assert_eq!(pack_bits(&unpack_bits(&bytes)), bytes);
    }

    #[test]
    fn capacity_accounts_for_overhead() {
        let s = seg();
        // 480 bits - 16 len - 24 crc = 440 -> 55 bytes.
        assert_eq!(s.max_payload_bytes(), 55);
    }

    #[test]
    fn segment_reassemble_roundtrip() {
        let s = seg();
        let tb = TransportBlock::new((0..50u8).collect());
        let parts = s.segment(&tb);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.len() == 120));
        let rx: Vec<(Vec<u8>, bool)> = parts.into_iter().map(|p| (p, true)).collect();
        assert_eq!(s.reassemble(&rx).unwrap(), tb);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let s = seg();
        let tb = TransportBlock::new(Vec::new());
        let parts = s.segment(&tb);
        let rx: Vec<(Vec<u8>, bool)> = parts.into_iter().map(|p| (p, true)).collect();
        assert_eq!(s.reassemble(&rx).unwrap(), tb);
    }

    #[test]
    fn max_sized_payload_roundtrips() {
        let s = seg();
        let tb = TransportBlock::new(vec![0x5A; s.max_payload_bytes()]);
        let parts = s.segment(&tb);
        let rx: Vec<(Vec<u8>, bool)> = parts.into_iter().map(|p| (p, true)).collect();
        assert_eq!(s.reassemble(&rx).unwrap(), tb);
    }

    #[test]
    #[should_panic(expected = "exceeds frame capacity")]
    fn oversized_payload_rejected() {
        let s = seg();
        let _ = s.segment(&TransportBlock::new(vec![0; 56]));
    }

    #[test]
    fn lost_segment_reported() {
        let s = seg();
        let parts = s.segment(&TransportBlock::new(vec![1, 2, 3]));
        let mut rx: Vec<(Vec<u8>, bool)> = parts.into_iter().map(|p| (p, true)).collect();
        rx[2].1 = false;
        assert_eq!(s.reassemble(&rx), Err(ReassembleError::SegmentLost { segment: 2 }));
    }

    #[test]
    fn bit_corruption_caught_by_crc() {
        let s = seg();
        let parts = s.segment(&TransportBlock::new(vec![9; 20]));
        let mut rx: Vec<(Vec<u8>, bool)> = parts.into_iter().map(|p| (p, true)).collect();
        rx[1].0[7] ^= 1; // flip a payload bit but keep decode_ok = true
        assert_eq!(s.reassemble(&rx), Err(ReassembleError::CrcMismatch));
    }

    #[test]
    fn corrupted_length_prefix_rejected() {
        let s = seg();
        let parts = s.segment(&TransportBlock::new(vec![9; 20]));
        let mut rx: Vec<(Vec<u8>, bool)> = parts.into_iter().map(|p| (p, true)).collect();
        // Force the length prefix to an impossible value.
        for b in rx[0].0[..16].iter_mut() {
            *b = 1;
        }
        let err = s.reassemble(&rx).unwrap_err();
        assert!(matches!(err, ReassembleError::BadLength | ReassembleError::CrcMismatch));
    }

    #[test]
    fn for_cell_matches_cell_numbers() {
        let cell = agora_phy::CellConfig::tiny_test(4);
        let s = Segmenter::for_cell(&cell);
        assert_eq!(s.segments, 4);
        assert_eq!(s.info_bits, cell.info_bits_per_symbol());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_payload_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..55)) {
            let s = Segmenter::new(120, 4);
            let tb = TransportBlock::new(data);
            let parts = s.segment(&tb);
            let rx: Vec<(Vec<u8>, bool)> = parts.into_iter().map(|p| (p, true)).collect();
            prop_assert_eq!(s.reassemble(&rx).unwrap(), tb);
        }

        #[test]
        fn single_bit_flip_never_passes(
            data in proptest::collection::vec(any::<u8>(), 1..50),
            flip in 0usize..400,
        ) {
            let s = Segmenter::new(120, 4);
            let tb = TransportBlock::new(data);
            let parts = s.segment(&tb);
            let mut rx: Vec<(Vec<u8>, bool)> = parts.into_iter().map(|p| (p, true)).collect();
            let seg = flip / 120;
            let bit = flip % 120;
            rx[seg].0[bit] ^= 1;
            // Either an error, or (if the flip landed in dead padding
            // beyond the CRC) the same payload back.
            match s.reassemble(&rx) {
                Ok(out) => prop_assert_eq!(out, tb),
                Err(_) => {}
            }
        }
    }
}
