//! # agora-channel — simulated radio environment
//!
//! Substitute for the paper's physical radio paths (the emulated-RRU AWGN
//! channel of §5.2 and the Skylark Faros over-the-air deployment of
//! §5.3): reproducible fading models, calibrated AWGN, and SNR helpers.

pub mod models;
pub mod snr;

pub use models::{apply_channel, AwgnSource, ChannelModel, FadingModel};
pub use snr::{db_to_linear, linear_to_db, measure_snr_db, per_user_snrs};
