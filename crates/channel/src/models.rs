//! Wireless channel models.
//!
//! The paper evaluates over (a) emulated AWGN channels at 25 dB SNR
//! (§5.2) and (b) real indoor line-of-sight channels at 17–26 dB SNR
//! (§5.3). We model (a) directly and substitute (b) with a Rician fading
//! model whose K-factor controls how line-of-sight the channel is; an
//! i.i.d. Rayleigh model covers the rich-scattering case.

use agora_math::{CMat, Cf32};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small-scale fading model for drawing channel matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingModel {
    /// Frequency-flat AWGN channel: `H` is a fixed unit-magnitude
    /// random-phase matrix (what the paper's IQ generator emulates).
    Awgn,
    /// I.i.d. complex Gaussian entries, unit average power.
    Rayleigh,
    /// Rician with the given K-factor (dB): LOS + scattered components.
    /// `k_db -> inf` degenerates to a pure LOS steering structure;
    /// `k_db -> -inf` to Rayleigh. Models the paper's OTA deployment.
    Rician {
        /// Ratio of LOS to scattered power, in dB.
        k_db: f32,
    },
}

/// A reproducible channel generator for an `M x K` cell.
#[derive(Debug)]
pub struct ChannelModel {
    m: usize,
    k: usize,
    model: FadingModel,
    rng: StdRng,
}

impl ChannelModel {
    /// Creates a generator with a deterministic seed.
    pub fn new(m: usize, k: usize, model: FadingModel, seed: u64) -> Self {
        Self { m, k, model, rng: StdRng::seed_from_u64(seed) }
    }

    /// Antennas `M`.
    pub fn num_antennas(&self) -> usize {
        self.m
    }

    /// Users `K`.
    pub fn num_users(&self) -> usize {
        self.k
    }

    /// Draws one channel realisation (block fading: constant within a
    /// frame, redrawn across frames).
    pub fn draw(&mut self) -> CMat {
        match self.model {
            FadingModel::Awgn => {
                // Unit-magnitude random-phase entries: a flat, lossless
                // channel with full spatial diversity (phases decorrelate
                // the columns, keeping H well-conditioned w.h.p.).
                let phases: Vec<f32> = (0..self.m * self.k)
                    .map(|_| self.rng.gen::<f32>() * core::f32::consts::TAU)
                    .collect();
                CMat::from_fn(self.m, self.k, |r, c| Cf32::cis(phases[r * self.k + c]))
            }
            FadingModel::Rayleigh => {
                let mut h = CMat::zeros(self.m, self.k);
                for z in h.as_mut_slice().iter_mut() {
                    *z = self.gaussian_sample().scale(core::f32::consts::FRAC_1_SQRT_2);
                }
                h
            }
            FadingModel::Rician { k_db } => {
                let k_lin = 10.0f32.powf(k_db / 10.0);
                let los_amp = (k_lin / (1.0 + k_lin)).sqrt();
                let nlos_amp = (1.0 / (1.0 + k_lin)).sqrt() * core::f32::consts::FRAC_1_SQRT_2;
                // LOS component: uniform-linear-array steering vectors with
                // a random angle of arrival per user.
                let aoas: Vec<f32> = (0..self.k)
                    .map(|_| (self.rng.gen::<f32>() - 0.5) * core::f32::consts::PI)
                    .collect();
                let mut h = CMat::from_fn(self.m, self.k, |ant, user| {
                    // Half-wavelength ULA: phase = pi * ant * sin(theta).
                    let phase = core::f32::consts::PI * ant as f32 * aoas[user].sin();
                    Cf32::cis(phase).scale(los_amp)
                });
                for z in h.as_mut_slice().iter_mut() {
                    *z += self.gaussian_sample().scale(nlos_amp);
                }
                h
            }
        }
    }

    /// One complex sample with i.i.d. standard normal components.
    fn gaussian_sample(&mut self) -> Cf32 {
        Cf32::new(self.gaussian(), self.gaussian())
    }

    fn gaussian(&mut self) -> f32 {
        // Box-Muller.
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

/// Additive white Gaussian noise source with a reproducible stream.
#[derive(Debug)]
pub struct AwgnSource {
    rng: StdRng,
    sigma: f32,
}

impl AwgnSource {
    /// Creates a noise source for the given per-complex-sample noise
    /// variance `sigma^2 = noise_power` (split evenly across I and Q).
    pub fn new(noise_power: f32, seed: u64) -> Self {
        assert!(noise_power >= 0.0);
        Self { rng: StdRng::seed_from_u64(seed), sigma: (noise_power / 2.0).sqrt() }
    }

    /// Creates a source calibrated for an SNR (dB) against unit signal
    /// power.
    pub fn for_snr_db(snr_db: f32, seed: u64) -> Self {
        Self::new(10.0f32.powf(-snr_db / 10.0), seed)
    }

    /// The total noise power per complex sample.
    pub fn noise_power(&self) -> f32 {
        2.0 * self.sigma * self.sigma
    }

    /// Adds noise to a sample vector in place.
    pub fn corrupt(&mut self, samples: &mut [Cf32]) {
        for z in samples.iter_mut() {
            *z += Cf32::new(self.gaussian() * self.sigma, self.gaussian() * self.sigma);
        }
    }

    fn gaussian(&mut self) -> f32 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

/// Applies the narrowband channel at one subcarrier: `y = H x + n` where
/// `x` is the `K`-vector of user symbols and `y` the `M`-vector of
/// antenna samples. Pass `None` for a noiseless link.
pub fn apply_channel(h: &CMat, x: &[Cf32], noise: Option<&mut AwgnSource>, y: &mut [Cf32]) {
    assert_eq!(x.len(), h.cols(), "user vector length mismatch");
    assert_eq!(y.len(), h.rows(), "antenna vector length mismatch");
    let hx = h.matvec(x);
    y.copy_from_slice(&hx);
    if let Some(n) = noise {
        n.corrupt(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awgn_model_entries_unit_magnitude() {
        let mut ch = ChannelModel::new(8, 4, FadingModel::Awgn, 1);
        let h = ch.draw();
        for z in h.as_slice() {
            assert!((z.abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn rayleigh_unit_average_power() {
        let mut ch = ChannelModel::new(32, 8, FadingModel::Rayleigh, 2);
        let mut acc = 0.0f64;
        let mut n = 0usize;
        for _ in 0..20 {
            let h = ch.draw();
            acc += h.as_slice().iter().map(|z| z.norm_sqr() as f64).sum::<f64>();
            n += h.as_slice().len();
        }
        let avg = acc / n as f64;
        assert!((avg - 1.0).abs() < 0.05, "average power {avg}");
    }

    #[test]
    fn rician_k_factor_splits_power() {
        // Very high K: almost pure LOS, entries near unit magnitude.
        let mut ch = ChannelModel::new(16, 2, FadingModel::Rician { k_db: 40.0 }, 3);
        let h = ch.draw();
        for z in h.as_slice() {
            assert!((z.abs() - 1.0).abs() < 0.1);
        }
        // Very low K: approximately Rayleigh; power still ~1 on average.
        let mut ch = ChannelModel::new(64, 4, FadingModel::Rician { k_db: -30.0 }, 4);
        let h = ch.draw();
        let avg: f32 =
            h.as_slice().iter().map(|z| z.norm_sqr()).sum::<f32>() / h.as_slice().len() as f32;
        assert!((avg - 1.0).abs() < 0.2, "avg power {avg}");
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = ChannelModel::new(4, 2, FadingModel::Rayleigh, 7);
        let mut b = ChannelModel::new(4, 2, FadingModel::Rayleigh, 7);
        assert!(a.draw().max_abs_diff(&b.draw()) < 1e-9);
        // And different across draws.
        assert!(a.draw().max_abs_diff(&b.draw()) < 1e-9);
        let mut c = ChannelModel::new(4, 2, FadingModel::Rayleigh, 8);
        assert!(a.draw().max_abs_diff(&c.draw()) > 1e-3);
    }

    #[test]
    fn noise_power_matches_request() {
        let mut src = AwgnSource::for_snr_db(10.0, 5);
        assert!((src.noise_power() - 0.1).abs() < 1e-6);
        let mut buf = vec![Cf32::ZERO; 200_000];
        src.corrupt(&mut buf);
        let measured: f64 = buf.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / buf.len() as f64;
        assert!((measured - 0.1).abs() < 0.01, "measured noise power {measured}");
    }

    #[test]
    fn noise_mean_is_zero() {
        let mut src = AwgnSource::new(1.0, 6);
        let mut buf = vec![Cf32::ZERO; 100_000];
        src.corrupt(&mut buf);
        let mean_re: f64 = buf.iter().map(|z| z.re as f64).sum::<f64>() / buf.len() as f64;
        let mean_im: f64 = buf.iter().map(|z| z.im as f64).sum::<f64>() / buf.len() as f64;
        assert!(mean_re.abs() < 0.01 && mean_im.abs() < 0.01);
    }

    #[test]
    fn apply_channel_matches_matvec() {
        let mut ch = ChannelModel::new(4, 2, FadingModel::Rayleigh, 9);
        let h = ch.draw();
        let x = [Cf32::new(1.0, 0.0), Cf32::new(0.0, -1.0)];
        let mut y = vec![Cf32::ZERO; 4];
        apply_channel(&h, &x, None, &mut y);
        let y_ref = h.matvec(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert_eq!(*a, *b);
        }
    }

    #[test]
    fn noisy_apply_perturbs_output() {
        let mut ch = ChannelModel::new(4, 2, FadingModel::Rayleigh, 10);
        let h = ch.draw();
        let x = [Cf32::ONE, Cf32::ONE];
        let mut clean = vec![Cf32::ZERO; 4];
        let mut noisy = vec![Cf32::ZERO; 4];
        apply_channel(&h, &x, None, &mut clean);
        let mut src = AwgnSource::for_snr_db(20.0, 11);
        apply_channel(&h, &x, Some(&mut src), &mut noisy);
        let dist: f32 = clean.iter().zip(noisy.iter()).map(|(a, b)| (*a - *b).norm_sqr()).sum();
        assert!(dist > 0.0 && dist < 1.0);
    }
}
