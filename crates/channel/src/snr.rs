//! SNR bookkeeping helpers: dB/linear conversion, measurement, and
//! per-user SNR assignment for the over-the-air experiment (17–26 dB
//! across antennas, §5.3).

use agora_math::Cf32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_linear(db: f32) -> f32 {
    10.0f32.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels.
#[inline]
pub fn linear_to_db(linear: f32) -> f32 {
    10.0 * linear.log10()
}

/// Measures the empirical SNR (dB) of a received signal given the clean
/// reference: `10 log10(|x|^2 / |y - x|^2)`.
pub fn measure_snr_db(clean: &[Cf32], noisy: &[Cf32]) -> f32 {
    assert_eq!(clean.len(), noisy.len());
    let sig: f32 = clean.iter().map(|z| z.norm_sqr()).sum();
    let err: f32 = clean.iter().zip(noisy.iter()).map(|(a, b)| (*a - *b).norm_sqr()).sum();
    if err <= 0.0 {
        f32::INFINITY
    } else {
        linear_to_db(sig / err)
    }
}

/// Draws one SNR (dB) per user, uniform in `[lo, hi]` — the paper reports
/// "a pilot SNR of 17–26 dB" across users/antennas in the OTA setup.
pub fn per_user_snrs(num_users: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    assert!(hi >= lo);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_users).map(|_| lo + rng.gen::<f32>() * (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_roundtrip() {
        for db in [-10.0f32, 0.0, 3.0, 25.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-4);
        }
        assert!((db_to_linear(0.0) - 1.0).abs() < 1e-6);
        assert!((db_to_linear(10.0) - 10.0).abs() < 1e-5);
    }

    #[test]
    fn measured_snr_matches_injected() {
        use crate::models::AwgnSource;
        let clean: Vec<Cf32> = (0..50_000).map(|i| Cf32::cis(i as f32 * 0.37)).collect();
        let mut noisy = clean.clone();
        AwgnSource::for_snr_db(15.0, 3).corrupt(&mut noisy);
        let snr = measure_snr_db(&clean, &noisy);
        assert!((snr - 15.0).abs() < 0.3, "measured {snr} dB");
    }

    #[test]
    fn identical_signals_have_infinite_snr() {
        let x = vec![Cf32::ONE; 10];
        assert!(measure_snr_db(&x, &x).is_infinite());
    }

    #[test]
    fn per_user_snrs_within_range() {
        let snrs = per_user_snrs(100, 17.0, 26.0, 42);
        assert_eq!(snrs.len(), 100);
        assert!(snrs.iter().all(|&s| (17.0..=26.0).contains(&s)));
        // Not all identical.
        assert!(snrs.iter().any(|&s| (s - snrs[0]).abs() > 0.1));
    }

    #[test]
    fn per_user_snrs_deterministic() {
        assert_eq!(per_user_snrs(8, 17.0, 26.0, 7), per_user_snrs(8, 17.0, 26.0, 7));
    }
}
