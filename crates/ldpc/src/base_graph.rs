//! QC-LDPC base graphs with the 5G NR structure.
//!
//! 3GPP TS 38.212 defines two base graphs: BG1 (46 x 68, 22 information
//! columns) for large blocks and high rates, BG2 (42 x 52, 10 information
//! columns) for small blocks and low rates. Both share the structure
//!
//! ```text
//!        kb info cols   4 core parity    extension parity
//!      +--------------+---------------+------------------+
//!   4  |      A       |  B (double    |        0         |   core rows
//!      |              |   diagonal)   |                  |
//!      +--------------+---------------+------------------+
//! m-4  |      C       |      D        |        I         |   extension rows
//!      +--------------+---------------+------------------+
//! ```
//!
//! where every nonzero entry is a cyclically shifted `Z x Z` identity. The
//! first two information columns are high-degree and always punctured
//! (never transmitted). The `B` core enables linear-time encoding.
//!
//! **Substitution note (see DESIGN.md §3):** the exact 3GPP shift tables
//! are not reproduced; shifts are drawn from a fixed deterministic
//! generator with a 4-cycle-avoidance pass for the evaluation lifting
//! sizes (104, 384). Dimensions, degree profile, puncturing, and the
//! encoding core match the standard, so the decoder cost model and BER
//! trends match the paper's.

use crate::lifting::MAX_Z;
use std::sync::OnceLock;

/// Which 5G NR base graph shape to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseGraphId {
    /// 46 x 68, 22 information columns — large blocks (the paper's
    /// evaluation uses BG1, "the most computationally demanding").
    Bg1,
    /// 42 x 52, 10 information columns — small blocks.
    Bg2,
}

/// One nonzero block of the base matrix: a `Z x Z` identity cyclically
/// shifted by `shift mod Z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseEntry {
    /// Base row (check-node group).
    pub row: u16,
    /// Base column (variable-node group).
    pub col: u16,
    /// Shift coefficient `V`; the effective shift for lifting size `Z` is
    /// `V mod Z`, as in TS 38.212.
    pub shift: u16,
}

/// A QC-LDPC base graph: dimensions plus the sparse list of shifted
/// identity blocks, with a per-row index for the decoders.
#[derive(Debug)]
pub struct BaseGraph {
    id: BaseGraphId,
    rows: usize,
    cols: usize,
    kb: usize,
    entries: Vec<BaseEntry>,
    /// `row_start[r]..row_start[r+1]` indexes `entries` for base row `r`.
    row_start: Vec<usize>,
}

/// Number of core (double-diagonal) parity rows/columns.
pub const CORE_ROWS: usize = 4;

impl BaseGraph {
    /// Returns the shared instance for a base graph id (built once).
    pub fn get(id: BaseGraphId) -> &'static BaseGraph {
        static BG1: OnceLock<BaseGraph> = OnceLock::new();
        static BG2: OnceLock<BaseGraph> = OnceLock::new();
        match id {
            BaseGraphId::Bg1 => BG1.get_or_init(|| BaseGraph::build(BaseGraphId::Bg1)),
            BaseGraphId::Bg2 => BG2.get_or_init(|| BaseGraph::build(BaseGraphId::Bg2)),
        }
    }

    /// The id this graph was built for.
    pub fn id(&self) -> BaseGraphId {
        self.id
    }

    /// Number of base rows (parity-check groups).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of base columns (variable groups); codeword length is
    /// `cols * Z` before puncturing.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of information columns (`kb`); payload is `kb * Z` bits.
    pub fn info_cols(&self) -> usize {
        self.kb
    }

    /// All nonzero entries, sorted by `(row, col)`.
    pub fn entries(&self) -> &[BaseEntry] {
        &self.entries
    }

    /// Entries of one base row.
    pub fn row_entries(&self, row: usize) -> &[BaseEntry] {
        &self.entries[self.row_start[row]..self.row_start[row + 1]]
    }

    /// Total number of edges in the lifted graph for size `z`.
    pub fn edge_count(&self, z: usize) -> usize {
        self.entries.len() * z
    }

    /// Counts 4-cycles in the lifted graph for size `z`. Diagnostic used
    /// to validate the construction; the standard-defined codes are
    /// 4-cycle-free for their designed sizes.
    pub fn count_4_cycles(&self, z: usize) -> usize {
        let mut count = 0;
        // For every pair of rows and pair of shared columns, a 4-cycle
        // exists iff the alternating shift sum is 0 mod z.
        for r1 in 0..self.rows {
            for r2 in r1 + 1..self.rows {
                let e1 = self.row_entries(r1);
                let e2 = self.row_entries(r2);
                // Collect shared columns via merge (entries sorted by col).
                let mut shared: Vec<(i64, i64)> = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < e1.len() && j < e2.len() {
                    match e1[i].col.cmp(&e2[j].col) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            shared.push((
                                (e1[i].shift as usize % z) as i64,
                                (e2[j].shift as usize % z) as i64,
                            ));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                for a in 0..shared.len() {
                    for b in a + 1..shared.len() {
                        let d = (shared[a].0 - shared[a].1) - (shared[b].0 - shared[b].1);
                        if d.rem_euclid(z as i64) == 0 {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    fn build(id: BaseGraphId) -> BaseGraph {
        let (rows, kb) = match id {
            BaseGraphId::Bg1 => (46usize, 22usize),
            BaseGraphId::Bg2 => (42usize, 10usize),
        };
        let cols = kb + rows;
        let mut rng = SplitMix::new(match id {
            BaseGraphId::Bg1 => 0xA60A_2020_0001,
            BaseGraphId::Bg2 => 0xA60A_2020_0002,
        });

        // 1. Choose the support (which blocks are nonzero).
        let mut support: Vec<Vec<u16>> = vec![Vec::new(); rows]; // cols per row
        for (r, row_support) in support.iter_mut().enumerate().take(CORE_ROWS) {
            // Core rows: high-degree. Columns 0 and 1 always participate;
            // the rest of the info columns join with high probability,
            // mirroring BG1's dense top rows.
            for c in 0..kb {
                if c < 2 || rng.chance(3, 4) {
                    row_support.push(c as u16);
                }
            }
            // Core parity double diagonal (B block):
            //   row0: p1 (shift 1), p2
            //   row1: p1, p2, p3
            //   row2:         p3, p4
            //   row3: p1,         p4
            let p = kb as u16;
            match r {
                0 => row_support.extend_from_slice(&[p, p + 1]),
                1 => row_support.extend_from_slice(&[p, p + 1, p + 2]),
                2 => row_support.extend_from_slice(&[p + 2, p + 3]),
                3 => row_support.extend_from_slice(&[p, p + 3]),
                _ => unreachable!(),
            }
        }
        for (r, row_support) in support.iter_mut().enumerate().skip(CORE_ROWS) {
            // Extension rows: column 0 always (high-degree punctured
            // column), column 1 on alternating rows, a few mid columns,
            // occasionally a core parity column (the D block), and the
            // identity column for this row.
            row_support.push(0);
            if r % 2 == 1 {
                row_support.push(1);
            }
            let extra = 3 + (rng.next_u64() % 2) as usize; // 3..=4 info cols
            let mut picked = 0;
            let mut guard = 0;
            while picked < extra && guard < 100 {
                guard += 1;
                let c = 2 + (rng.next_u64() as usize % (kb - 2));
                if !row_support.contains(&(c as u16)) {
                    row_support.push(c as u16);
                    picked += 1;
                }
            }
            if rng.chance(1, 2) {
                let p = (kb + (r % CORE_ROWS)) as u16;
                if !row_support.contains(&p) {
                    row_support.push(p);
                }
            }
            row_support.push((kb + r) as u16); // identity parity column
        }

        // 2. Assign shift coefficients, redrawing to avoid 4-cycles at the
        // evaluation lifting sizes. Shift bookkeeping per (row, col).
        const CHECK_Z: [usize; 3] = [104, 384, 52];
        let mut entries: Vec<BaseEntry> = Vec::new();
        for (r, cols_in_row) in support.iter().enumerate() {
            let mut sorted = cols_in_row.clone();
            sorted.sort_unstable();
            for &c in &sorted {
                let shift = if r < CORE_ROWS && c as usize >= kb {
                    // Fixed core-parity shifts: shift 1 on (row 0, p1) and 0
                    // elsewhere — this is what makes encoding linear-time.
                    if r == 0 && c as usize == kb {
                        1
                    } else {
                        0
                    }
                } else if r >= CORE_ROWS && c as usize == kb + r {
                    0 // identity block of the extension parity
                } else {
                    // Draw a shift avoiding 4-cycles with already-placed
                    // entries at the checked lifting sizes.
                    let mut v = (rng.next_u64() % MAX_Z as u64) as u16;
                    for _attempt in 0..64 {
                        if !creates_4_cycle(&entries, r as u16, c, v, &CHECK_Z) {
                            break;
                        }
                        v = (rng.next_u64() % MAX_Z as u64) as u16;
                    }
                    v
                };
                entries.push(BaseEntry { row: r as u16, col: c, shift });
            }
        }

        // 3. Repair pass: draw-time checks cannot see fixed-shift entries
        // that are placed later in the same row (core parity columns), so
        // sweep for residual 4-cycles and redraw one drawn entry of each.
        repair_4_cycles(&mut entries, kb, &CHECK_Z, &mut rng);

        // 4. Build the row index.
        let mut row_start = vec![0usize; rows + 1];
        for e in &entries {
            row_start[e.row as usize + 1] += 1;
        }
        for r in 0..rows {
            row_start[r + 1] += row_start[r];
        }

        BaseGraph { id, rows, cols, kb, entries, row_start }
    }
}

/// Finds residual 4-cycles at the checked lifting sizes and redraws the
/// shift of one *redrawable* participating entry (information columns, or
/// core-parity columns inside extension rows — never the fixed encoding
/// core or the identity diagonal). Iterates until clean or a generous
/// attempt budget runs out; the budget is never hit for the shipped seeds,
/// and the test suite asserts zero cycles.
fn repair_4_cycles(entries: &mut [BaseEntry], kb: usize, zs: &[usize], rng: &mut SplitMix) {
    'outer: for _pass in 0..1000 {
        // Locate the first 4-cycle: rows (r1, r2), shared cols (c1, c2).
        for a in 0..entries.len() {
            for b in a + 1..entries.len() {
                let (e1, e2) = (entries[a], entries[b]);
                if e1.row != e2.row || e1.col == e2.col {
                    continue;
                }
                // Find a second row sharing both columns.
                for c in 0..entries.len() {
                    let f1 = entries[c];
                    if f1.row == e1.row || f1.col != e1.col {
                        continue;
                    }
                    if let Some(d) =
                        entries.iter().position(|f2| f2.row == f1.row && f2.col == e2.col)
                    {
                        let f2 = entries[d];
                        let cyclic = zs.iter().any(|&z| {
                            let zi = z as i64;
                            let delta = (e1.shift as i64 % zi - f1.shift as i64 % zi)
                                - (e2.shift as i64 % zi - f2.shift as i64 % zi);
                            delta.rem_euclid(zi) == 0
                        });
                        if !cyclic {
                            continue;
                        }
                        // Redraw a participating entry whose shift is free.
                        let fixed = |e: &BaseEntry| {
                            let core_parity = e.col as usize >= kb && (e.row as usize) < CORE_ROWS;
                            let identity = e.col as usize >= kb + CORE_ROWS;
                            core_parity || identity
                        };
                        let victim = [a, b, c, d]
                            .into_iter()
                            .find(|&i| !fixed(&entries[i]))
                            .expect("4-cycle with all shifts fixed is structurally impossible");
                        // Redraw until the new shift closes no cycle at any
                        // checked size (validated against *all* entries,
                        // fixed ones included).
                        for _ in 0..256 {
                            entries[victim].shift = (rng.next_u64() % MAX_Z as u64) as u16;
                            if !participates_in_4_cycle(entries, victim, zs) {
                                break;
                            }
                        }
                        continue 'outer;
                    }
                }
            }
        }
        return; // no cycle found
    }
}

/// True if `entries[idx]` participates in any 4-cycle at any checked
/// lifting size, considering every other entry (fixed or drawn).
fn participates_in_4_cycle(entries: &[BaseEntry], idx: usize, zs: &[usize]) -> bool {
    let e1 = entries[idx];
    for e2 in entries.iter().filter(|e| e.row == e1.row && e.col != e1.col) {
        for f1 in entries.iter().filter(|f| f.row != e1.row && f.col == e1.col) {
            if let Some(f2) = entries.iter().find(|f| f.row == f1.row && f.col == e2.col) {
                for &z in zs {
                    let zi = z as i64;
                    let delta = (e1.shift as i64 % zi - f1.shift as i64 % zi)
                        - (e2.shift as i64 % zi - f2.shift as i64 % zi);
                    if delta.rem_euclid(zi) == 0 {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Returns true if placing `(row, col, shift)` would close a 4-cycle with
/// existing entries at any of the checked lifting sizes.
fn creates_4_cycle(entries: &[BaseEntry], row: u16, col: u16, shift: u16, zs: &[usize]) -> bool {
    // A 4-cycle uses rows (r0, row) and columns (c0, col) with all four
    // blocks present: (r0,c0) (r0,col) (row,c0) (row,col=candidate).
    for e_same_col in entries.iter().filter(|e| e.col == col && e.row != row) {
        let r0 = e_same_col.row;
        for e_r0 in entries.iter().filter(|e| e.row == r0 && e.col != col) {
            let c0 = e_r0.col;
            if let Some(e_row_c0) = entries.iter().find(|e| e.row == row && e.col == c0) {
                for &z in zs {
                    let d = (e_r0.shift as i64 % z as i64 - e_same_col.shift as i64 % z as i64)
                        - (e_row_c0.shift as i64 % z as i64 - shift as i64 % z as i64);
                    if d.rem_euclid(z as i64) == 0 {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// SplitMix64: tiny deterministic generator for graph construction only.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bg1_dimensions_match_standard() {
        let bg = BaseGraph::get(BaseGraphId::Bg1);
        assert_eq!(bg.rows(), 46);
        assert_eq!(bg.cols(), 68);
        assert_eq!(bg.info_cols(), 22);
    }

    #[test]
    fn bg2_dimensions_match_standard() {
        let bg = BaseGraph::get(BaseGraphId::Bg2);
        assert_eq!(bg.rows(), 42);
        assert_eq!(bg.cols(), 52);
        assert_eq!(bg.info_cols(), 10);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = BaseGraph::build(BaseGraphId::Bg1);
        let b = BaseGraph::build(BaseGraphId::Bg1);
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn core_parity_structure_enables_linear_encoding() {
        for id in [BaseGraphId::Bg1, BaseGraphId::Bg2] {
            let bg = BaseGraph::get(id);
            let kb = bg.info_cols() as u16;
            let parity_cols = |r: usize| -> Vec<(u16, u16)> {
                bg.row_entries(r)
                    .iter()
                    .filter(|e| e.col >= kb)
                    .map(|e| (e.col - kb, e.shift))
                    .collect()
            };
            assert_eq!(parity_cols(0), vec![(0, 1), (1, 0)]);
            assert_eq!(parity_cols(1), vec![(0, 0), (1, 0), (2, 0)]);
            assert_eq!(parity_cols(2), vec![(2, 0), (3, 0)]);
            assert_eq!(parity_cols(3), vec![(0, 0), (3, 0)]);
        }
    }

    #[test]
    fn extension_rows_have_identity_diagonal() {
        let bg = BaseGraph::get(BaseGraphId::Bg1);
        let kb = bg.info_cols();
        for r in CORE_ROWS..bg.rows() {
            let diag = bg
                .row_entries(r)
                .iter()
                .find(|e| e.col as usize == kb + r)
                .expect("missing identity block");
            assert_eq!(diag.shift, 0);
            // No entries beyond the diagonal (lower-triangular extension).
            assert!(bg.row_entries(r).iter().all(|e| (e.col as usize) <= kb + r));
        }
    }

    #[test]
    fn punctured_columns_are_high_degree() {
        let bg = BaseGraph::get(BaseGraphId::Bg1);
        let deg = |c: u16| -> usize { bg.entries().iter().filter(|e| e.col == c).count() };
        let avg_info: f64 =
            (2..bg.info_cols() as u16).map(deg).sum::<usize>() as f64 / (bg.info_cols() - 2) as f64;
        assert!(deg(0) as f64 > 3.0 * avg_info, "col 0 degree {} vs avg {avg_info}", deg(0));
        assert!(deg(1) as f64 > 1.5 * avg_info, "col 1 degree {} vs avg {avg_info}", deg(1));
    }

    #[test]
    fn entries_sorted_and_indexed() {
        let bg = BaseGraph::get(BaseGraphId::Bg1);
        for r in 0..bg.rows() {
            let es = bg.row_entries(r);
            assert!(!es.is_empty());
            assert!(es.iter().all(|e| e.row as usize == r));
            assert!(es.windows(2).all(|w| w[0].col < w[1].col));
        }
        assert_eq!(bg.edge_count(104), bg.entries().len() * 104);
    }

    #[test]
    fn no_4_cycles_at_evaluation_sizes() {
        for id in [BaseGraphId::Bg1, BaseGraphId::Bg2] {
            let bg = BaseGraph::get(id);
            assert_eq!(bg.count_4_cycles(104), 0, "{id:?} has 4-cycles at Z=104");
            assert_eq!(bg.count_4_cycles(384), 0, "{id:?} has 4-cycles at Z=384");
        }
    }

    #[test]
    fn shifts_within_range() {
        let bg = BaseGraph::get(BaseGraphId::Bg1);
        assert!(bg.entries().iter().all(|e| (e.shift as usize) < MAX_Z));
    }
}
