//! Fixed-point (i8) layered offset min-sum decoder, vectorised across the
//! QC lifting dimension `Z`.
//!
//! The paper offloads LDPC decoding to Intel FlexRAN's *fixed-point SIMD*
//! offset min-sum decoder rather than running it in float — Figure 13
//! shows decoding is the single largest compute block of the uplink, so
//! this is where quantised, lane-parallel processing pays the most. This
//! module is the Rust analogue: channel LLRs are quantised to saturating
//! `i8` (see [`quantize_llrs`]) and the layered schedule of
//! [`crate::decoder::Decoder::decode`] is re-expressed so that all `Z`
//! lanes of a base-graph circulant are processed in lockstep.
//!
//! The key structural observation: for a base entry with shift `s`, lane
//! `i` of the check touches bit `col * Z + (i + s) % Z` — i.e. the
//! *rotated slice* of that column's `Z`-block. Gathering the rotation is
//! two contiguous `memcpy`s, after which every per-lane operation
//! (extrinsic subtract, abs, two-minimum tracking, sign accumulation,
//! offset, saturating posterior update) is a pure element-wise pass over
//! contiguous `i8` arrays — exactly the shape AVX2 byte ops want
//! (`vpsubsb`/`vpabsb`/`vpminsb`/`vpaddsb`, 32 lanes per instruction).
//!
//! Two code paths share one set of scalar semantics:
//! * a portable scalar-i8 loop (the reference), and
//! * an AVX2 fast path behind [`SimdTier`] runtime dispatch.
//!
//! They are **bit-exact** against each other by construction: every AVX2
//! instruction used has an exact scalar counterpart (saturating i8
//! add/sub, `max`, `abs`, compare/blend), and the proptests assert
//! equality across base graphs and lifting sizes. LLR values are confined
//! to `[-127, 127]`: -128 is clamped away after every saturating op so
//! `abs` and negation can never overflow.

use crate::base_graph::{BaseGraph, BaseGraphId};
use crate::decoder::DecodeResult;
use agora_math::simd::SimdTier;

/// Largest representable quantised LLR magnitude. The domain is the
/// symmetric `[-127, 127]`; -128 is never produced.
pub const I8_LLR_MAX: i8 = 127;

/// Default `f32 -> i8` quantisation scale (LLR units per integer step:
/// `llr_i8 = round(llr_f32 * scale)`). 4.0 gives a +-31.75 LLR dynamic
/// range with 0.25-LLR resolution — comfortably past the point where
/// BLER matches the float decoder at the paper's operating points, while
/// an offset of 2 reproduces the classic beta = 0.5 correction.
pub const DEFAULT_LLR_SCALE: f32 = 4.0;

/// Largest check-to-variable message magnitude. Clipping messages well
/// below [`I8_LLR_MAX`] is what keeps *layered* fixed-point decoding
/// stable: the posterior saturates at 127 while the true sum of incoming
/// messages keeps growing, so a stored message comparable to the clipped
/// posterior would wipe it out (or flip its sign) when subtracted back
/// out on the next iteration. Bounding messages to 31 bounds that
/// extrinsic collapse to a quarter of the posterior range — a saturated
/// posterior can never change sign from a single message replacement —
/// which matches the precision split used by hardware min-sum decoders
/// (narrow messages, wide accumulator).
pub const I8_MSG_MAX: i8 = 31;

/// Largest channel-prior magnitude admitted into the decoder, strictly
/// below [`I8_MSG_MAX`]. The base graphs' extension parity columns have
/// degree one, so a wrong-sign channel value there can only ever be
/// overturned by its single check message: if the prior could reach the
/// message clip, a deep-faded parity bit would be stuck forever, and the
/// resulting block-error floor *grows* with SNR (larger scale x LLR
/// magnitudes make clamped wrong-sign priors more common). Keeping the
/// prior one step under the clip guarantees a full-strength message
/// outweighs it — the 6-bit channel / 6-bit message split hardware
/// decoders use, with the tie broken toward correction.
pub const I8_CHAN_MAX: i8 = I8_MSG_MAX - 1;

/// Quantises `f32` LLRs to saturating `i8` with the given scale.
/// Values round to nearest and clamp to `[-127, 127]`; non-finite inputs
/// saturate in their sign's direction (NaN maps to 0).
pub fn quantize_llrs(src: &[f32], dst: &mut [i8], scale: f32) {
    assert_eq!(src.len(), dst.len(), "quantise length mismatch");
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        let v = (s * scale).round();
        *d = v.clamp(-(I8_LLR_MAX as f32), I8_LLR_MAX as f32) as i8;
    }
}

/// Configuration for the fixed-point decoder. Mirrors
/// [`crate::decoder::DecodeConfig`] with the offset expressed in
/// quantised LLR units (2 at the default scale of 4.0 equals the float
/// decoder's beta = 0.5).
#[derive(Debug, Clone, Copy)]
pub struct DecodeConfigI8 {
    /// Maximum BP iterations.
    pub max_iters: usize,
    /// Min-sum correction offset in quantised LLR units.
    pub offset: i8,
    /// Stop as soon as the hard decision satisfies every parity check.
    pub early_termination: bool,
    /// Number of active base rows; `None` uses the full graph.
    pub active_rows: Option<usize>,
}

impl Default for DecodeConfigI8 {
    fn default() -> Self {
        Self { max_iters: 5, offset: 2, early_termination: true, active_rows: None }
    }
}

/// Fixed-point layered offset min-sum decoder for one `(base graph, Z)`
/// pair. Holds all scratch so repeated decodes never allocate; create one
/// per worker thread.
#[derive(Debug, Clone)]
pub struct DecoderI8 {
    bg: &'static BaseGraph,
    z: usize,
    tier: SimdTier,
    /// Per-edge check-to-variable messages, `[entry][z]`.
    msgs: Vec<i8>,
    /// Posterior LLRs, `[col][z]`.
    post: Vec<i8>,
    /// Per-row extrinsic scratch, `[row slot][z]` (max row degree slots).
    t: Vec<i8>,
    /// Per-lane smallest |extrinsic| of the current row.
    min1: Vec<i8>,
    /// Per-lane second-smallest |extrinsic|.
    min2: Vec<i8>,
    /// Per-lane index (within the row) achieving `min1`.
    min_pos: Vec<u8>,
    /// Per-lane sign-product mask: 0x00 even #negatives, 0xFF odd.
    signs: Vec<u8>,
}

impl DecoderI8 {
    /// Creates a decoder with preallocated scratch, auto-detecting the
    /// SIMD tier.
    pub fn new(id: BaseGraphId, z: usize) -> Self {
        Self::with_tier(id, z, SimdTier::detect())
    }

    /// Creates a decoder pinned to a specific SIMD tier (parity tests and
    /// Table 5-style ablations).
    pub fn with_tier(id: BaseGraphId, z: usize, tier: SimdTier) -> Self {
        assert!(z >= 2, "lifting size must be at least 2");
        let bg = BaseGraph::get(id);
        let max_deg = (0..bg.rows()).map(|r| bg.row_entries(r).len()).max().unwrap_or(0);
        Self {
            bg,
            z,
            tier,
            msgs: vec![0; bg.entries().len() * z],
            post: vec![0; bg.cols() * z],
            t: vec![0; max_deg * z],
            min1: vec![0; z],
            min2: vec![0; z],
            min_pos: vec![0; z],
            signs: vec![0; z],
        }
    }

    /// Codeword length in bits.
    pub fn codeword_len(&self) -> usize {
        self.bg.cols() * self.z
    }

    /// Information length in bits.
    pub fn info_len(&self) -> usize {
        self.bg.info_cols() * self.z
    }

    /// The SIMD tier this decoder dispatches to.
    pub fn tier(&self) -> SimdTier {
        self.tier
    }

    /// Decodes from quantised channel LLRs (positive = bit 0 more likely),
    /// length [`Self::codeword_len`]. Punctured/untransmitted bits must
    /// carry LLR 0. Layered schedule, identical message flow to the f32
    /// [`crate::decoder::Decoder::decode`].
    ///
    /// # Panics
    /// Panics if `llr.len() != self.codeword_len()`.
    pub fn decode(&mut self, llr: &[i8], cfg: &DecodeConfigI8) -> DecodeResult {
        assert_eq!(llr.len(), self.codeword_len(), "LLR length mismatch");
        let rows = cfg.active_rows.unwrap_or(self.bg.rows()).min(self.bg.rows());
        self.post.copy_from_slice(llr);
        // Confine priors to [-I8_CHAN_MAX, I8_CHAN_MAX]: keeps -128 out of
        // the abs/negate domain and, critically, keeps every channel value
        // weaker than a full-strength check message (see I8_CHAN_MAX).
        for p in self.post.iter_mut() {
            *p = (*p).clamp(-I8_CHAN_MAX, I8_CHAN_MAX);
        }
        self.msgs.fill(0);

        let mut iterations = 0;
        for _iter in 0..cfg.max_iters {
            iterations += 1;
            for r in 0..rows {
                self.process_row(r, cfg.offset);
            }
            if cfg.early_termination && self.syndrome_ok(rows) {
                break;
            }
        }

        let success = self.syndrome_ok(rows);
        let info_bits = self.post[..self.info_len()].iter().map(|&l| (l < 0) as u8).collect();
        DecodeResult { info_bits, success, iterations }
    }

    /// One layered update of base row `r`: gather rotated posteriors,
    /// compute extrinsics and the per-lane two minima, then scatter the
    /// new messages and posteriors back.
    fn process_row(&mut self, r: usize, offset: i8) {
        let z = self.z;
        let row = self.bg.row_entries(r);
        let entry_base = self.entry_offset(r);
        self.min1.fill(I8_LLR_MAX);
        self.min2.fill(I8_LLR_MAX);
        self.min_pos.fill(u8::MAX);
        self.signs.fill(0);

        // Phase 1: t_k = sat(post_rot - msg), track mins/signs per lane.
        for (k, e) in row.iter().enumerate() {
            let shift = e.shift as usize % z;
            let col = e.col as usize * z;
            let tk = &mut self.t[k * z..(k + 1) * z];
            // Rotated gather: tk[i] = post[col + (i + shift) % z].
            tk[..z - shift].copy_from_slice(&self.post[col + shift..col + z]);
            tk[z - shift..].copy_from_slice(&self.post[col..col + shift]);
            let mk = (entry_base + k) * z;
            row_extrinsic(
                tk,
                &self.msgs[mk..mk + z],
                &mut self.min1,
                &mut self.min2,
                &mut self.min_pos,
                &mut self.signs,
                k as u8,
                self.tier,
            );
        }

        // Phase 2: new messages + posterior update, rotated scatter back.
        for (k, e) in row.iter().enumerate() {
            let shift = e.shift as usize % z;
            let col = e.col as usize * z;
            let tk = &mut self.t[k * z..(k + 1) * z];
            let mk = (entry_base + k) * z;
            row_update(
                tk,
                &mut self.msgs[mk..mk + z],
                &self.min1,
                &self.min2,
                &self.min_pos,
                &self.signs,
                k as u8,
                offset,
                self.tier,
            );
            self.post[col + shift..col + z].copy_from_slice(&tk[..z - shift]);
            self.post[col..col + shift].copy_from_slice(&tk[z - shift..]);
        }
    }

    /// Index of the first entry of base row `r` in the flat entry array.
    fn entry_offset(&self, r: usize) -> usize {
        let base = self.bg.entries().as_ptr() as usize;
        let row = self.bg.row_entries(r).as_ptr() as usize;
        (row - base) / core::mem::size_of::<crate::base_graph::BaseEntry>()
    }

    fn syndrome_ok(&self, rows: usize) -> bool {
        let z = self.z;
        for r in 0..rows {
            for i in 0..z {
                let mut parity = 0u8;
                for e in self.bg.row_entries(r) {
                    let shift = e.shift as usize % z;
                    let bit = e.col as usize * z + (i + shift) % z;
                    parity ^= (self.post[bit] < 0) as u8;
                }
                if parity != 0 {
                    return false;
                }
            }
        }
        true
    }
}

/// Phase-1 lane pass: `t = max(sat_sub(t, msg), -127)`, then fold `|t|`
/// into the per-lane two-minimum trackers and XOR the sign mask.
#[allow(clippy::too_many_arguments)]
fn row_extrinsic(
    t: &mut [i8],
    msgs: &[i8],
    min1: &mut [i8],
    min2: &mut [i8],
    min_pos: &mut [u8],
    signs: &mut [u8],
    k: u8,
    tier: SimdTier,
) {
    let mut head = 0;
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        head = (t.len() / 32) * 32;
        unsafe {
            row_extrinsic_avx2(
                &mut t[..head],
                &msgs[..head],
                &mut min1[..head],
                &mut min2[..head],
                &mut min_pos[..head],
                &mut signs[..head],
                k,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = tier;
    for i in head..t.len() {
        let v = t[i].saturating_sub(msgs[i]).max(-I8_LLR_MAX);
        t[i] = v;
        let a = v.abs();
        if a < min1[i] {
            min2[i] = min1[i];
            min1[i] = a;
            min_pos[i] = k;
        } else if a < min2[i] {
            min2[i] = a;
        }
        if v < 0 {
            signs[i] ^= 0xFF;
        }
    }
}

/// Phase-2 lane pass: magnitudes from the offset two minima, sign from
/// the row sign-product excluding self, saturating posterior update.
#[allow(clippy::too_many_arguments)]
fn row_update(
    t: &mut [i8],
    msgs: &mut [i8],
    min1: &[i8],
    min2: &[i8],
    min_pos: &[u8],
    signs: &[u8],
    k: u8,
    offset: i8,
    tier: SimdTier,
) {
    let mut head = 0;
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        head = (t.len() / 32) * 32;
        unsafe {
            row_update_avx2(
                &mut t[..head],
                &mut msgs[..head],
                &min1[..head],
                &min2[..head],
                &min_pos[..head],
                &signs[..head],
                k,
                offset,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = tier;
    for i in head..t.len() {
        let m1 = min1[i].saturating_sub(offset).clamp(0, I8_MSG_MAX);
        let m2 = min2[i].saturating_sub(offset).clamp(0, I8_MSG_MAX);
        let mag = if min_pos[i] == k { m2 } else { m1 };
        let v = t[i];
        // Sign-product excluding self = total product XOR own sign.
        let neg = (signs[i] != 0) ^ (v < 0);
        let msg = if neg { -mag } else { mag };
        msgs[i] = msg;
        t[i] = v.saturating_add(msg).max(-I8_LLR_MAX);
    }
}

/// AVX2 phase 1: 32 lanes per iteration. Exact vector counterparts of the
/// scalar ops in [`row_extrinsic`] (`vpsubsb`, clamp via `vpmaxsb`,
/// `vpabsb`, strict-compare blends), so outputs are bit-identical.
///
/// # Safety
/// Caller must ensure AVX2 support; all slices must share a length that
/// is a multiple of 32.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn row_extrinsic_avx2(
    t: &mut [i8],
    msgs: &[i8],
    min1: &mut [i8],
    min2: &mut [i8],
    min_pos: &mut [u8],
    signs: &mut [u8],
    k: u8,
) {
    use core::arch::x86_64::*;
    let floor = _mm256_set1_epi8(-I8_LLR_MAX);
    let zero = _mm256_setzero_si256();
    let kv = _mm256_set1_epi8(k as i8);
    for c in (0..t.len()).step_by(32) {
        let tv = _mm256_loadu_si256(t.as_ptr().add(c) as *const __m256i);
        let mv = _mm256_loadu_si256(msgs.as_ptr().add(c) as *const __m256i);
        let v = _mm256_max_epi8(_mm256_subs_epi8(tv, mv), floor);
        _mm256_storeu_si256(t.as_mut_ptr().add(c) as *mut __m256i, v);
        let a = _mm256_abs_epi8(v);
        let m1 = _mm256_loadu_si256(min1.as_ptr().add(c) as *const __m256i);
        let m2 = _mm256_loadu_si256(min2.as_ptr().add(c) as *const __m256i);
        let mp = _mm256_loadu_si256(min_pos.as_ptr().add(c) as *const __m256i);
        // a < min1 (strict), matching the scalar branch order.
        let lt1 = _mm256_cmpgt_epi8(m1, a);
        let new_m2 = _mm256_blendv_epi8(_mm256_min_epi8(m2, a), m1, lt1);
        let new_m1 = _mm256_min_epi8(m1, a);
        let new_mp = _mm256_blendv_epi8(mp, kv, lt1);
        _mm256_storeu_si256(min1.as_mut_ptr().add(c) as *mut __m256i, new_m1);
        _mm256_storeu_si256(min2.as_mut_ptr().add(c) as *mut __m256i, new_m2);
        _mm256_storeu_si256(min_pos.as_mut_ptr().add(c) as *mut __m256i, new_mp);
        let sv = _mm256_loadu_si256(signs.as_ptr().add(c) as *const __m256i);
        let negm = _mm256_cmpgt_epi8(zero, v);
        _mm256_storeu_si256(signs.as_mut_ptr().add(c) as *mut __m256i, _mm256_xor_si256(sv, negm));
    }
}

/// AVX2 phase 2: 32 lanes per iteration, exact counterpart of the scalar
/// loop in [`row_update`] (conditional negate via XOR/SUB against the
/// 0xFF sign mask, saturating add, clamp).
///
/// # Safety
/// Caller must ensure AVX2 support; all slices must share a length that
/// is a multiple of 32.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn row_update_avx2(
    t: &mut [i8],
    msgs: &mut [i8],
    min1: &[i8],
    min2: &[i8],
    min_pos: &[u8],
    signs: &[u8],
    k: u8,
    offset: i8,
) {
    use core::arch::x86_64::*;
    let floor = _mm256_set1_epi8(-I8_LLR_MAX);
    let zero = _mm256_setzero_si256();
    let off = _mm256_set1_epi8(offset);
    let kv = _mm256_set1_epi8(k as i8);
    let msg_max = _mm256_set1_epi8(I8_MSG_MAX);
    for c in (0..t.len()).step_by(32) {
        let m1 = _mm256_loadu_si256(min1.as_ptr().add(c) as *const __m256i);
        let m2 = _mm256_loadu_si256(min2.as_ptr().add(c) as *const __m256i);
        let mag1 = _mm256_min_epi8(_mm256_max_epi8(_mm256_subs_epi8(m1, off), zero), msg_max);
        let mag2 = _mm256_min_epi8(_mm256_max_epi8(_mm256_subs_epi8(m2, off), zero), msg_max);
        let mp = _mm256_loadu_si256(min_pos.as_ptr().add(c) as *const __m256i);
        let is_min = _mm256_cmpeq_epi8(mp, kv);
        let mag = _mm256_blendv_epi8(mag1, mag2, is_min);
        let v = _mm256_loadu_si256(t.as_ptr().add(c) as *const __m256i);
        let sv = _mm256_loadu_si256(signs.as_ptr().add(c) as *const __m256i);
        let negm = _mm256_xor_si256(sv, _mm256_cmpgt_epi8(zero, v));
        // Conditional two's-complement negate: (mag ^ m) - m for m in
        // {0x00, 0xFF}; mag <= 127 so no overflow.
        let msg = _mm256_sub_epi8(_mm256_xor_si256(mag, negm), negm);
        _mm256_storeu_si256(msgs.as_mut_ptr().add(c) as *mut __m256i, msg);
        let newt = _mm256_max_epi8(_mm256_adds_epi8(v, msg), floor);
        _mm256_storeu_si256(t.as_mut_ptr().add(c) as *mut __m256i, newt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{DecodeConfig, Decoder};
    use crate::encoder::Encoder;

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 1) as u8
            })
            .collect()
    }

    fn clean_llrs_i8(cw: &[u8], z: usize, amp: i8) -> Vec<i8> {
        cw.iter()
            .enumerate()
            .map(|(i, &b)| {
                if i < 2 * z {
                    0
                } else if b == 0 {
                    amp
                } else {
                    -amp
                }
            })
            .collect()
    }

    fn noisy_llrs_f32(cw: &[u8], z: usize, snr_db: f32, seed: u64) -> Vec<f32> {
        let sigma2 = 10.0f32.powf(-snr_db / 10.0);
        let sigma = sigma2.sqrt();
        let mut state = seed | 1;
        let mut gauss = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u1 = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u2 = (state >> 11) as f64 / (1u64 << 53) as f64;
            ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
        };
        cw.iter()
            .enumerate()
            .map(|(i, &b)| {
                if i < 2 * z {
                    return 0.0;
                }
                let x = if b == 0 { 1.0f32 } else { -1.0 };
                2.0 * (x + sigma * gauss()) / sigma2
            })
            .collect()
    }

    #[test]
    fn quantize_rounds_and_saturates() {
        let src = [0.0f32, 0.1, -0.1, 1.0, -1.0, 100.0, -100.0, f32::INFINITY, f32::NEG_INFINITY];
        let mut dst = vec![0i8; src.len()];
        quantize_llrs(&src, &mut dst, 4.0);
        assert_eq!(dst, [0, 0, 0, 4, -4, 127, -127, 127, -127]);
    }

    #[test]
    fn decodes_clean_codeword_bg1() {
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = DecoderI8::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 3);
        let cw = enc.encode(&info);
        let llr = clean_llrs_i8(&cw, z, 32);
        let res = dec.decode(&llr, &DecodeConfigI8::default());
        assert!(res.success);
        assert_eq!(res.info_bits, info);
        assert!(res.iterations <= 3, "took {} iterations", res.iterations);
    }

    #[test]
    fn decodes_noisy_codeword_at_moderate_snr() {
        let z = 16;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = DecoderI8::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 11);
        let cw = enc.encode(&info);
        let f = noisy_llrs_f32(&cw, z, 4.0, 12345);
        let mut q = vec![0i8; f.len()];
        quantize_llrs(&f, &mut q, DEFAULT_LLR_SCALE);
        let res = dec.decode(&q, &DecodeConfigI8 { max_iters: 20, ..Default::default() });
        assert!(res.success, "i8 decode failed at 4 dB");
        assert_eq!(res.info_bits, info);
    }

    #[test]
    fn matches_f32_hard_decisions_on_noisy_input() {
        // At a workable SNR both decoders must land on the same (correct)
        // codeword — the quantisation must not change the outcome.
        let z = 24;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec_f = Decoder::new(BaseGraphId::Bg1, z);
        let mut dec_q = DecoderI8::new(BaseGraphId::Bg1, z);
        for seed in 0..8u64 {
            let info = random_bits(enc.info_len(), 100 + seed);
            let cw = enc.encode(&info);
            let f = noisy_llrs_f32(&cw, z, 5.0, 900 + seed);
            let mut q = vec![0i8; f.len()];
            quantize_llrs(&f, &mut q, DEFAULT_LLR_SCALE);
            let rf = dec_f.decode(&f, &DecodeConfig { max_iters: 10, ..Default::default() });
            let rq = dec_q.decode(&q, &DecodeConfigI8 { max_iters: 10, ..Default::default() });
            assert!(rf.success && rq.success, "seed {seed}: f32 {} i8 {}", rf.success, rq.success);
            assert_eq!(rf.info_bits, rq.info_bits, "seed {seed}: hard decisions differ");
        }
    }

    #[test]
    fn saturated_input_is_handled() {
        // All-saturated LLRs (including the forbidden -128) must not
        // overflow abs/negate and must decode the implied codeword.
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg2, z);
        let mut dec = DecoderI8::new(BaseGraphId::Bg2, z);
        let info = random_bits(enc.info_len(), 77);
        let cw = enc.encode(&info);
        let llr: Vec<i8> = cw
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if i < 2 * z {
                    0
                } else if b == 0 {
                    127
                } else {
                    -128
                }
            })
            .collect();
        let res = dec.decode(&llr, &DecodeConfigI8::default());
        assert!(res.success);
        assert_eq!(res.info_bits, info);
    }

    #[test]
    fn early_termination_counts_iterations() {
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = DecoderI8::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 41);
        let cw = enc.encode(&info);
        let llr = clean_llrs_i8(&cw, z, 40);
        let with_et = dec.decode(&llr, &DecodeConfigI8::default());
        let without = dec.decode(
            &llr,
            &DecodeConfigI8 { early_termination: false, max_iters: 5, ..Default::default() },
        );
        assert!(with_et.iterations < without.iterations);
        assert_eq!(without.iterations, 5);
        assert!(without.success);
    }

    #[test]
    fn repeated_decodes_are_independent() {
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = DecoderI8::new(BaseGraphId::Bg1, z);
        let info_a = random_bits(enc.info_len(), 61);
        let info_b = random_bits(enc.info_len(), 62);
        let llr_a = clean_llrs_i8(&enc.encode(&info_a), z, 32);
        let llr_b = clean_llrs_i8(&enc.encode(&info_b), z, 32);
        let ra1 = dec.decode(&llr_a, &DecodeConfigI8::default());
        let rb = dec.decode(&llr_b, &DecodeConfigI8::default());
        let ra2 = dec.decode(&llr_a, &DecodeConfigI8::default());
        assert_eq!(ra1.info_bits, ra2.info_bits);
        assert_eq!(rb.info_bits, info_b);
    }

    #[test]
    fn active_rows_restricts_graph() {
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = DecoderI8::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 51);
        let cw = enc.encode(&info);
        let llr = clean_llrs_i8(&cw, z, 32);
        let res = dec.decode(&llr, &DecodeConfigI8 { active_rows: Some(10), ..Default::default() });
        assert!(res.success);
    }

    #[test]
    fn scalar_tier_decodes_identically_to_detected() {
        let z = 40; // exercises both the 32-lane SIMD body and the tail
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec_a = DecoderI8::with_tier(BaseGraphId::Bg1, z, SimdTier::Scalar);
        let mut dec_b = DecoderI8::with_tier(BaseGraphId::Bg1, z, SimdTier::detect());
        let info = random_bits(enc.info_len(), 5);
        let cw = enc.encode(&info);
        let f = noisy_llrs_f32(&cw, z, 3.0, 31337);
        let mut q = vec![0i8; f.len()];
        quantize_llrs(&f, &mut q, DEFAULT_LLR_SCALE);
        let cfg = DecodeConfigI8 { max_iters: 10, early_termination: false, ..Default::default() };
        let ra = dec_a.decode(&q, &cfg);
        let rb = dec_b.decode(&q, &cfg);
        assert_eq!(ra.info_bits, rb.info_bits);
        assert_eq!(ra.success, rb.success);
        // Bit-exact internal state, not just matching hard decisions.
        assert_eq!(dec_a.post, dec_b.post);
        assert_eq!(dec_a.msgs, dec_b.msgs);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Lifting sizes the benches exercise: the paper's Z = 104/384 (BG1
    /// Figure 12 points), the OTA Z = 56 (BG2), the tiny-test Z = 12, and
    /// boundary shapes around the 32-lane vector width.
    const BENCH_ZS: [(BaseGraphId, usize); 8] = [
        (BaseGraphId::Bg1, 104),
        (BaseGraphId::Bg1, 384),
        (BaseGraphId::Bg1, 64),
        (BaseGraphId::Bg2, 56),
        (BaseGraphId::Bg2, 12),
        (BaseGraphId::Bg2, 32),
        (BaseGraphId::Bg2, 36),
        (BaseGraphId::Bg1, 30),
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The AVX2 and scalar-i8 paths are bit-exact over random LLRs,
        /// for every (base graph, Z) pair used by the benches: identical
        /// hard decisions, syndrome outcomes, and full posterior/message
        /// state.
        #[test]
        fn avx2_and_scalar_paths_are_bit_exact(
            seed in any::<u64>(),
            which in 0usize..BENCH_ZS.len(),
            iters in 1usize..6,
        ) {
            let (bg, z) = BENCH_ZS[which];
            let mut dec_s = DecoderI8::with_tier(bg, z, SimdTier::Scalar);
            let mut dec_v = DecoderI8::with_tier(bg, z, SimdTier::detect());
            let mut state = seed | 1;
            let llr: Vec<i8> = (0..dec_s.codeword_len()).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8 as i8
            }).collect();
            let cfg = DecodeConfigI8 {
                max_iters: iters,
                early_termination: false,
                ..Default::default()
            };
            let rs = dec_s.decode(&llr, &cfg);
            let rv = dec_v.decode(&llr, &cfg);
            prop_assert_eq!(rs.info_bits, rv.info_bits);
            prop_assert_eq!(rs.success, rv.success);
            prop_assert_eq!(&dec_s.post, &dec_v.post);
            prop_assert_eq!(&dec_s.msgs, &dec_v.msgs);
        }

        /// Round-trip through quantisation: any payload encodes and
        /// decodes back through a clean channel at bench lifting sizes.
        #[test]
        fn encode_quantize_decode_roundtrip(
            seed in any::<u64>(),
            which in 0usize..BENCH_ZS.len(),
        ) {
            let (bg, z) = BENCH_ZS[which];
            let enc = crate::encoder::Encoder::new(bg, z);
            let mut dec = DecoderI8::new(bg, z);
            let mut state = seed | 1;
            let info: Vec<u8> = (0..enc.info_len()).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 1) as u8
            }).collect();
            let cw = enc.encode(&info);
            let f: Vec<f32> = cw.iter().enumerate().map(|(i, &b)| {
                if i < 2 * z { 0.0 } else if b == 0 { 6.0 } else { -6.0 }
            }).collect();
            let mut q = vec![0i8; f.len()];
            quantize_llrs(&f, &mut q, DEFAULT_LLR_SCALE);
            let res = dec.decode(&q, &DecodeConfigI8 { max_iters: 10, ..Default::default() });
            prop_assert!(res.success);
            prop_assert_eq!(res.info_bits, info);
        }
    }
}
