//! Error-rate bookkeeping: BER and BLER counters used by the Figure 9 and
//! Figure 12 experiments.

/// Accumulates bit- and block-error statistics across trials.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrorStats {
    /// Total information bits compared.
    pub bits: u64,
    /// Bits that differed.
    pub bit_errors: u64,
    /// Total blocks compared.
    pub blocks: u64,
    /// Blocks with at least one bit error or a decoder-reported failure.
    pub block_errors: u64,
}

impl ErrorStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decoded block against the transmitted reference. A
    /// block is in error if any bit differs or `decoder_success` is false
    /// (matching the paper's "blocks for which LDPC decoding fails").
    pub fn record(&mut self, tx: &[u8], rx: &[u8], decoder_success: bool) {
        assert_eq!(tx.len(), rx.len(), "block length mismatch");
        let errs = count_bit_errors(tx, rx);
        self.bits += tx.len() as u64;
        self.bit_errors += errs;
        self.blocks += 1;
        if errs > 0 || !decoder_success {
            self.block_errors += 1;
        }
    }

    /// Merges another accumulator (e.g. from a parallel worker).
    pub fn merge(&mut self, other: &ErrorStats) {
        self.bits += other.bits;
        self.bit_errors += other.bit_errors;
        self.blocks += other.blocks;
        self.block_errors += other.block_errors;
    }

    /// Bit error rate; 0 when nothing was recorded.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Block error rate; 0 when nothing was recorded.
    pub fn bler(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.block_errors as f64 / self.blocks as f64
        }
    }
}

/// Counts differing positions between two equal-length bit slices.
pub fn count_bit_errors(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).filter(|(x, y)| (**x & 1) != (**y & 1)).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_blocks_have_zero_rates() {
        let mut s = ErrorStats::new();
        let block = vec![1u8, 0, 1, 1];
        s.record(&block, &block, true);
        s.record(&block, &block, true);
        assert_eq!(s.ber(), 0.0);
        assert_eq!(s.bler(), 0.0);
        assert_eq!(s.blocks, 2);
    }

    #[test]
    fn bit_errors_counted() {
        let mut s = ErrorStats::new();
        s.record(&[0, 0, 0, 0], &[1, 0, 1, 0], true);
        assert_eq!(s.bit_errors, 2);
        assert_eq!(s.ber(), 0.5);
        assert_eq!(s.bler(), 1.0);
    }

    #[test]
    fn decoder_failure_marks_block_even_if_bits_match() {
        let mut s = ErrorStats::new();
        s.record(&[1, 1], &[1, 1], false);
        assert_eq!(s.bit_errors, 0);
        assert_eq!(s.bler(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ErrorStats::new();
        a.record(&[0, 0], &[0, 1], true);
        let mut b = ErrorStats::new();
        b.record(&[1, 1], &[1, 1], true);
        a.merge(&b);
        assert_eq!(a.blocks, 2);
        assert_eq!(a.block_errors, 1);
        assert_eq!(a.bits, 4);
        assert_eq!(a.bit_errors, 1);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = ErrorStats::new();
        assert_eq!(s.ber(), 0.0);
        assert_eq!(s.bler(), 0.0);
    }
}
