//! CRC-24A transport-block CRC (3GPP TS 38.212 §5.1).
//!
//! 5G NR attaches a 24-bit CRC to every transport block before LDPC
//! encoding; the receiver uses it as the final block-error arbiter (the
//! paper's BLER is "the fraction of uplink user data blocks for which
//! LDPC decoding fails"). Polynomial: `x^24 + x^23 + x^18 + x^17 + x^14 +
//! x^11 + x^10 + x^7 + x^6 + x^5 + x^4 + x^3 + x + 1` (0x864CFB).

/// The CRC-24A generator polynomial (without the leading x^24 term).
pub const CRC24A_POLY: u32 = 0x864CFB;
/// Number of CRC bits.
pub const CRC_BITS: usize = 24;

/// 256-entry lookup table: `TABLE[b]` is the CRC register contribution of
/// shifting one whole byte `b` (MSB first) through the LFSR. Built at
/// compile time from the bitwise recurrence.
const CRC24A_TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        // Start with the byte in the top 8 bits of the 24-bit register.
        let mut reg = (b as u32) << 16;
        let mut k = 0;
        while k < 8 {
            let msb = reg >> 23;
            reg = (reg << 1) & 0xFF_FFFF;
            if msb == 1 {
                reg ^= CRC24A_POLY;
            }
            k += 1;
        }
        table[b] = reg;
        b += 1;
    }
    table
}

/// Computes the CRC-24A over a bit sequence (one bit per byte), returning
/// the 24 parity bits MSB-first.
///
/// Byte-sliced: 8 input bits are packed MSB-first and folded through the
/// 256-entry table in one step — 8x fewer register updates than the
/// bit-at-a-time reference (kept under `#[cfg(test)]` as
/// `crc24a_bitwise`, with an equivalence proptest).
pub fn crc24a(bits: &[u8]) -> [u8; CRC_BITS] {
    let mut reg: u32 = 0;
    let mut chunks = bits.chunks_exact(8);
    for chunk in &mut chunks {
        let mut byte = 0u8;
        for &b in chunk {
            byte = (byte << 1) | (b & 1);
        }
        let idx = ((reg >> 16) as u8) ^ byte;
        reg = ((reg << 8) & 0xFF_FFFF) ^ CRC24A_TABLE[idx as usize];
    }
    // Bitwise tail for the last < 8 bits.
    for &b in chunks.remainder() {
        let msb = ((reg >> 23) & 1) as u8;
        reg = (reg << 1) & 0xFF_FFFF;
        if msb ^ (b & 1) == 1 {
            reg ^= CRC24A_POLY;
        }
    }
    let mut out = [0u8; CRC_BITS];
    for (i, o) in out.iter_mut().enumerate() {
        *o = ((reg >> (CRC_BITS - 1 - i)) & 1) as u8;
    }
    out
}

/// Bit-at-a-time reference implementation, retained as the specification
/// for the table-driven [`crc24a`].
#[cfg(test)]
fn crc24a_bitwise(bits: &[u8]) -> [u8; CRC_BITS] {
    let mut reg: u32 = 0;
    for &b in bits {
        let msb = ((reg >> 23) & 1) as u8;
        reg = (reg << 1) & 0xFF_FFFF;
        if msb ^ (b & 1) == 1 {
            reg ^= CRC24A_POLY;
        }
    }
    let mut out = [0u8; CRC_BITS];
    for (i, o) in out.iter_mut().enumerate() {
        *o = ((reg >> (CRC_BITS - 1 - i)) & 1) as u8;
    }
    out
}

/// Appends the CRC-24A to a payload, producing `bits.len() + 24` bits.
pub fn attach_crc(bits: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bits.len() + CRC_BITS);
    out.extend_from_slice(bits);
    out.extend_from_slice(&crc24a(bits));
    out
}

/// Checks a payload-plus-CRC sequence; true if the CRC matches.
pub fn check_crc(bits_with_crc: &[u8]) -> bool {
    if bits_with_crc.len() < CRC_BITS {
        return false;
    }
    let (payload, crc) = bits_with_crc.split_at(bits_with_crc.len() - CRC_BITS);
    crc24a(payload) == crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_payload_has_zero_crc() {
        let crc = crc24a(&[0u8; 100]);
        assert!(crc.iter().all(|&b| b == 0));
    }

    #[test]
    fn attach_then_check_roundtrip() {
        let payload: Vec<u8> = (0..321).map(|i| ((i * 13) % 2) as u8).collect();
        let framed = attach_crc(&payload);
        assert_eq!(framed.len(), payload.len() + 24);
        assert!(check_crc(&framed));
    }

    #[test]
    fn single_bit_flip_detected() {
        let payload: Vec<u8> = (0..200).map(|i| ((i * 7) % 2) as u8).collect();
        let framed = attach_crc(&payload);
        for pos in [0usize, 57, 199, 210, framed.len() - 1] {
            let mut corrupted = framed.clone();
            corrupted[pos] ^= 1;
            assert!(!check_crc(&corrupted), "flip at {pos} undetected");
        }
    }

    #[test]
    fn all_double_bit_flips_in_short_block_detected() {
        // CRC-24A has minimum distance > 2 at these lengths.
        let payload: Vec<u8> = (0..40).map(|i| (i % 2) as u8).collect();
        let framed = attach_crc(&payload);
        for i in 0..framed.len() {
            for j in i + 1..framed.len() {
                let mut c = framed.clone();
                c[i] ^= 1;
                c[j] ^= 1;
                assert!(!check_crc(&c), "double flip ({i},{j}) undetected");
            }
        }
    }

    #[test]
    fn too_short_input_fails_check() {
        assert!(!check_crc(&[1u8; 10]));
    }

    #[test]
    fn table_matches_bitwise_at_non_byte_lengths() {
        // Exercise every remainder length 0..8 around the chunk boundary.
        for len in 0..64usize {
            let bits: Vec<u8> = (0..len).map(|i| ((i * 11 + 3) % 2) as u8).collect();
            assert_eq!(crc24a(&bits), crc24a_bitwise(&bits), "len {len}");
        }
    }

    #[test]
    fn crc_is_linear() {
        // CRC of XOR equals XOR of CRCs (no init/xorout in 3GPP CRCs).
        let a: Vec<u8> = (0..64).map(|i| ((i * 3) % 2) as u8).collect();
        let b: Vec<u8> = (0..64).map(|i| ((i * 5 + 1) % 2) as u8).collect();
        let ab: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        let ca = crc24a(&a);
        let cb = crc24a(&b);
        let cab = crc24a(&ab);
        for k in 0..CRC_BITS {
            assert_eq!(cab[k], ca[k] ^ cb[k]);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The byte-sliced table implementation equals the bitwise
        /// reference for arbitrary bit content and length (including
        /// lengths that leave a 1..7-bit tail).
        #[test]
        fn table_equals_bitwise(
            seed in any::<u64>(),
            len in 0usize..600,
        ) {
            let mut state = seed | 1;
            let bits: Vec<u8> = (0..len).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 1) as u8
            }).collect();
            prop_assert_eq!(crc24a(&bits), crc24a_bitwise(&bits));
        }
    }
}
