//! Linear-time QC-LDPC encoder.
//!
//! Exploits the double-diagonal core of the 5G base graphs: the four core
//! parity blocks are solved with cyclic rotations and XORs (no matrix
//! inversion), then each extension parity block is a plain accumulation of
//! its row. Complexity is `O(E * Z)` bit operations where `E` is the base
//! graph edge count — this is the `O(L)`-per-user "Encoding" block of
//! Table 1 in the paper.

use crate::base_graph::{BaseGraph, BaseGraphId, CORE_ROWS};

/// QC-LDPC encoder for one `(base graph, Z)` pair.
///
/// Bits are represented as one byte each (`0`/`1`), which keeps the code
/// transparent; the cost is irrelevant next to decoding.
#[derive(Debug, Clone, Copy)]
pub struct Encoder {
    bg: &'static BaseGraph,
    z: usize,
}

impl Encoder {
    /// Creates an encoder. `z` must be a valid lifting size (callers
    /// normally obtain it from [`crate::lifting`]).
    pub fn new(id: BaseGraphId, z: usize) -> Self {
        assert!(z >= 2, "lifting size must be at least 2");
        Self { bg: BaseGraph::get(id), z }
    }

    /// Payload size in bits (`kb * Z`).
    pub fn info_len(&self) -> usize {
        self.bg.info_cols() * self.z
    }

    /// Full codeword size in bits (`cols * Z`), before puncturing.
    pub fn codeword_len(&self) -> usize {
        self.bg.cols() * self.z
    }

    /// The lifting size.
    pub fn z(&self) -> usize {
        self.z
    }

    /// The base graph in use.
    pub fn base_graph(&self) -> &'static BaseGraph {
        self.bg
    }

    /// Encodes `info` (one bit per byte, length [`Self::info_len`]) into a
    /// full codeword (length [`Self::codeword_len`]). The codeword starts
    /// with the systematic bits.
    ///
    /// # Panics
    /// Panics if `info.len() != self.info_len()`.
    pub fn encode(&self, info: &[u8]) -> Vec<u8> {
        assert_eq!(info.len(), self.info_len(), "payload length mismatch");
        let z = self.z;
        let kb = self.bg.info_cols();
        let cols = self.bg.cols();
        let rows = self.bg.rows();
        let mut cw = vec![0u8; cols * z];
        cw[..kb * z].copy_from_slice(info);

        // lambda_r = XOR over info blocks of P(shift) * c_block, core rows.
        let mut lambda = vec![vec![0u8; z]; CORE_ROWS];
        for (r, l) in lambda.iter_mut().enumerate() {
            for e in self.bg.row_entries(r) {
                let c = e.col as usize;
                if c >= kb {
                    continue;
                }
                accumulate_rotated(l, &cw[c * z..(c + 1) * z], e.shift as usize % z);
            }
        }

        // Core parity: with the fixed B structure
        //   row0: P(1) p1 + p2           = lambda0
        //   row1: P(0) p1 + p2 + p3      = lambda1
        //   row2:             p3 + p4    = lambda2
        //   row3: P(0) p1 +         p4   = lambda3
        // summing all four rows cancels p2..p4 and leaves P(1) p1 = sum.
        let mut s = vec![0u8; z];
        for l in &lambda {
            xor_into(&mut s, l);
        }
        // p1 = P(1)^{-1} s = P(z-1) s.
        let mut p1 = vec![0u8; z];
        accumulate_rotated(&mut p1, &s, z - 1);
        // p2 = lambda0 ^ P(1) p1
        let mut p2 = lambda[0].clone();
        accumulate_rotated(&mut p2, &p1, 1 % z);
        // p3 = lambda1 ^ p1 ^ p2
        let mut p3 = lambda[1].clone();
        xor_into(&mut p3, &p1);
        xor_into(&mut p3, &p2);
        // p4 = lambda2 ^ p3
        let mut p4 = lambda[2].clone();
        xor_into(&mut p4, &p3);

        cw[kb * z..(kb + 1) * z].copy_from_slice(&p1);
        cw[(kb + 1) * z..(kb + 2) * z].copy_from_slice(&p2);
        cw[(kb + 2) * z..(kb + 3) * z].copy_from_slice(&p3);
        cw[(kb + 3) * z..(kb + 4) * z].copy_from_slice(&p4);

        // Extension parity: p_r = XOR of every other block in row r.
        for r in CORE_ROWS..rows {
            let own_col = kb + r;
            let mut p = vec![0u8; z];
            for e in self.bg.row_entries(r) {
                let c = e.col as usize;
                if c == own_col {
                    continue;
                }
                accumulate_rotated(&mut p, &cw[c * z..(c + 1) * z], e.shift as usize % z);
            }
            cw[own_col * z..(own_col + 1) * z].copy_from_slice(&p);
        }
        cw
    }

    /// Verifies `H c = 0` for a full-length codeword; the encoder's
    /// invariant and the decoders' success criterion.
    pub fn check(&self, cw: &[u8]) -> bool {
        assert_eq!(cw.len(), self.codeword_len());
        let z = self.z;
        for r in 0..self.bg.rows() {
            for i in 0..z {
                let mut parity = 0u8;
                for e in self.bg.row_entries(r) {
                    let c = e.col as usize;
                    let shift = e.shift as usize % z;
                    parity ^= cw[c * z + (i + shift) % z];
                }
                if parity != 0 {
                    return false;
                }
            }
        }
        true
    }
}

/// `dst ^= P(shift) * src`, i.e. `dst[i] ^= src[(i + shift) mod z]`.
fn accumulate_rotated(dst: &mut [u8], src: &[u8], shift: usize) {
    let z = dst.len();
    debug_assert_eq!(src.len(), z);
    let (tail, head) = src.split_at(shift);
    for (d, s) in dst[..z - shift].iter_mut().zip(head.iter()) {
        *d ^= s;
    }
    for (d, s) in dst[z - shift..].iter_mut().zip(tail.iter()) {
        *d ^= s;
    }
}

fn xor_into(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 1) as u8
            })
            .collect()
    }

    #[test]
    fn rotation_helper_matches_definition() {
        let src = [1u8, 0, 1, 1, 0];
        let mut dst = [0u8; 5];
        accumulate_rotated(&mut dst, &src, 2);
        // dst[i] = src[(i+2) % 5]
        assert_eq!(dst, [1, 1, 0, 1, 0]);
    }

    #[test]
    fn zero_payload_encodes_to_zero_codeword() {
        let enc = Encoder::new(BaseGraphId::Bg1, 8);
        let cw = enc.encode(&vec![0u8; enc.info_len()]);
        assert!(cw.iter().all(|&b| b == 0));
        assert!(enc.check(&cw));
    }

    #[test]
    fn encoded_words_satisfy_all_checks_bg1() {
        for z in [4usize, 8, 13, 104] {
            let enc = Encoder::new(BaseGraphId::Bg1, z);
            let info = random_bits(enc.info_len(), z as u64);
            let cw = enc.encode(&info);
            assert!(enc.check(&cw), "H c != 0 for Z={z}");
            // Systematic prefix preserved.
            assert_eq!(&cw[..enc.info_len()], &info[..]);
        }
    }

    #[test]
    fn encoded_words_satisfy_all_checks_bg2() {
        for z in [6usize, 10, 52] {
            let enc = Encoder::new(BaseGraphId::Bg2, z);
            let info = random_bits(enc.info_len(), 1000 + z as u64);
            let cw = enc.encode(&info);
            assert!(enc.check(&cw), "H c != 0 for Z={z}");
        }
    }

    #[test]
    fn encoding_is_linear() {
        // encode(a ^ b) == encode(a) ^ encode(b) for a linear code.
        let enc = Encoder::new(BaseGraphId::Bg2, 8);
        let a = random_bits(enc.info_len(), 5);
        let b = random_bits(enc.info_len(), 6);
        let ab: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        let ca = enc.encode(&a);
        let cb = enc.encode(&b);
        let cab = enc.encode(&ab);
        let cxor: Vec<u8> = ca.iter().zip(cb.iter()).map(|(x, y)| x ^ y).collect();
        assert_eq!(cab, cxor);
    }

    #[test]
    fn single_bit_error_detected_by_check() {
        let enc = Encoder::new(BaseGraphId::Bg1, 8);
        let info = random_bits(enc.info_len(), 77);
        let mut cw = enc.encode(&info);
        cw[100] ^= 1;
        assert!(!enc.check(&cw));
    }

    #[test]
    fn paper_code_block_size() {
        // The paper's emulated-RRU config: Z=104 BG1 -> 6864-bit codeword
        // after puncturing 2Z: (68-2)*104 = 6864 (§5.2).
        let enc = Encoder::new(BaseGraphId::Bg1, 104);
        assert_eq!(enc.codeword_len() - 2 * 104, 6864);
        assert_eq!(enc.info_len(), 22 * 104); // 2288 info bits
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn wrong_payload_length_panics() {
        let enc = Encoder::new(BaseGraphId::Bg1, 8);
        let _ = enc.encode(&[0u8; 10]);
    }
}
