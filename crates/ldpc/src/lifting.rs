//! 5G NR lifting sizes.
//!
//! A QC-LDPC code is defined by a small *base graph* whose entries are
//! cyclic shifts of a `Z x Z` identity block. 3GPP TS 38.212 defines 51
//! valid lifting sizes `Z = a * 2^j` with `a` in {2,3,5,7,9,11,13,15} and
//! small `j`, capped at 384; the *set index* `iLS` groups sizes by `a` and
//! selects which shift-coefficient table applies. We reproduce the size
//! table and set-index mapping exactly; decode time scaling linearly with
//! `Z` (Figure 12a) follows from the lifting mechanics.

/// The maximum lifting size defined by 5G NR.
pub const MAX_Z: usize = 384;

/// The eight base factors `a`; `iLS` is the index into this array.
pub const SET_FACTORS: [usize; 8] = [2, 3, 5, 7, 9, 11, 13, 15];

/// Returns all 51 valid 5G NR lifting sizes in ascending order.
pub fn lifting_sizes() -> Vec<usize> {
    let mut sizes = Vec::new();
    for &a in SET_FACTORS.iter() {
        let mut z = a;
        while z <= MAX_Z {
            sizes.push(z);
            z *= 2;
        }
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// True if `z` is a valid 5G NR lifting size.
pub fn is_valid_lifting(z: usize) -> bool {
    set_index(z).is_some()
}

/// Returns the set index `iLS` (0..8) for a lifting size, or `None` if the
/// size is not in the standard table.
pub fn set_index(z: usize) -> Option<usize> {
    if z == 0 || z > MAX_Z {
        return None;
    }
    // Strip powers of two, then the remaining odd part must be one of the
    // base factors (with 2^j * 2 handled via a = 2).
    let odd = z >> z.trailing_zeros();
    if odd == 1 {
        // Pure power of two: only representable via a = 2, and z must be
        // at least 2.
        return if z >= 2 { Some(0) } else { None };
    }
    SET_FACTORS.iter().position(|&a| a == odd)
}

/// Returns the smallest valid lifting size `>= z`, or `None` if `z`
/// exceeds [`MAX_Z`]. Used to pick `Z` from a payload size.
pub fn next_lifting_size(z: usize) -> Option<usize> {
    lifting_sizes().into_iter().find(|&s| s >= z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_51_sizes() {
        let sizes = lifting_sizes();
        assert_eq!(sizes.len(), 51);
        assert_eq!(*sizes.first().unwrap(), 2);
        assert_eq!(*sizes.last().unwrap(), 384);
    }

    #[test]
    fn paper_sizes_are_valid() {
        // Z = 104 (13 * 8) and Z = 384 (3 * 128) are the paper's two
        // evaluation points (Figure 12a).
        assert!(is_valid_lifting(104));
        assert!(is_valid_lifting(384));
        assert_eq!(set_index(104), Some(6)); // a = 13
        assert_eq!(set_index(384), Some(1)); // a = 3
    }

    #[test]
    fn invalid_sizes_rejected() {
        assert!(!is_valid_lifting(0));
        assert!(!is_valid_lifting(1));
        assert!(!is_valid_lifting(17)); // odd, not a base factor
        assert!(!is_valid_lifting(385));
        assert!(!is_valid_lifting(202)); // 2 * 101
    }

    #[test]
    fn powers_of_two_valid_from_2() {
        for z in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            assert!(is_valid_lifting(z), "{z} should be valid");
            assert_eq!(set_index(z), Some(0));
        }
    }

    #[test]
    fn next_lifting_size_rounds_up() {
        assert_eq!(next_lifting_size(100), Some(104));
        assert_eq!(next_lifting_size(104), Some(104));
        assert_eq!(next_lifting_size(385), None);
        assert_eq!(next_lifting_size(1), Some(2));
    }

    #[test]
    fn all_sizes_have_set_index() {
        for z in lifting_sizes() {
            assert!(set_index(z).is_some(), "{z} missing set index");
        }
    }
}
