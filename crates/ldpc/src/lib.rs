//! # agora-ldpc — 5G NR-style QC-LDPC codec
//!
//! From-scratch replacement for the Intel FlexRAN LDPC SDK the Agora
//! paper links against (closed-source binaries):
//!
//! * [`base_graph`]: BG1/BG2-shaped protographs with the double-diagonal
//!   encoding core and punctured high-degree columns (substitution
//!   documented in DESIGN.md — shift tables are generated, not copied
//!   from TS 38.212).
//! * [`lifting`]: the standard's 51 lifting sizes and set indices.
//! * [`encoder`]: linear-time systematic encoder.
//! * [`decoder`]: offset min-sum BP, layered and flooding schedules.
//! * [`decoder_i8`]: fixed-point (i8) layered min-sum, Z-lane vectorised
//!   with an AVX2 fast path and bit-exact scalar fallback.
//! * [`rate_match`]: circular-buffer rate matching and LLR re-inflation.
//! * [`crc`]: CRC-24A transport-block CRC.
//! * [`metrics`]: BER/BLER accumulators.

pub mod base_graph;
pub mod crc;
pub mod decoder;
pub mod decoder_i8;
pub mod encoder;
pub mod lifting;
pub mod metrics;
pub mod rate_match;

pub use base_graph::{BaseEntry, BaseGraph, BaseGraphId};
pub use crc::{attach_crc, check_crc, crc24a};
pub use decoder::{DecodeConfig, DecodeResult, Decoder};
pub use decoder_i8::{quantize_llrs, DecodeConfigI8, DecoderI8, DEFAULT_LLR_SCALE};
pub use encoder::Encoder;
pub use metrics::{count_bit_errors, ErrorStats};
pub use rate_match::RateMatch;
