//! Offset min-sum LDPC decoders.
//!
//! The paper uses Intel FlexRAN's decoder, "an offset min-sum belief
//! propagation (BP) based decoding algorithm" [Chen & Fossorier 2002].
//! Two schedules are provided:
//!
//! * [`Decoder::decode`] — **layered** (row-serial): each base-row layer
//!   immediately updates the posterior LLRs, roughly halving the
//!   iterations needed versus flooding. This is the production schedule.
//! * [`Decoder::decode_flooding`] — classic two-phase flooding, kept as a
//!   baseline and cross-check.
//!
//! Cost scales as `O(E * Z * iterations)` — linear in both `Z` and the
//! iteration count, which is exactly the trend Figure 12(a) reports.

use crate::base_graph::{BaseGraph, BaseGraphId};

/// Decoder configuration.
#[derive(Debug, Clone, Copy)]
pub struct DecodeConfig {
    /// Maximum BP iterations (the paper sweeps 5 and 10).
    pub max_iters: usize,
    /// Min-sum correction offset beta (0.5 is the classic choice).
    pub offset: f32,
    /// Stop as soon as the hard decision satisfies every parity check.
    pub early_termination: bool,
    /// Number of active base rows; `None` uses the full graph. Rate
    /// matching shrinks this when high-rate transmissions omit extension
    /// parity bits entirely.
    pub active_rows: Option<usize>,
}

impl Default for DecodeConfig {
    fn default() -> Self {
        Self { max_iters: 5, offset: 0.5, early_termination: true, active_rows: None }
    }
}

/// Outcome of a decode attempt.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// Hard-decision information bits (one byte each, length `kb * Z`).
    pub info_bits: Vec<u8>,
    /// True iff the final hard decision satisfies all active checks.
    pub success: bool,
    /// BP iterations actually executed.
    pub iterations: usize,
}

/// Offset min-sum decoder for one `(base graph, Z)` pair.
///
/// Holds scratch buffers so repeated decodes do not allocate; create one
/// per worker thread.
#[derive(Debug, Clone)]
pub struct Decoder {
    bg: &'static BaseGraph,
    z: usize,
    /// Per-edge check-to-variable messages, indexed `[entry][z]`.
    msgs: Vec<f32>,
    /// Posterior LLRs, length `cols * z`.
    post: Vec<f32>,
    /// Variable-to-check scratch for the flooding schedule (same layout
    /// as `msgs`); kept here so repeated decodes never allocate.
    v2c: Vec<f32>,
}

impl Decoder {
    /// Creates a decoder with preallocated scratch space.
    pub fn new(id: BaseGraphId, z: usize) -> Self {
        assert!(z >= 2, "lifting size must be at least 2");
        let bg = BaseGraph::get(id);
        Self {
            bg,
            z,
            msgs: vec![0.0; bg.entries().len() * z],
            post: vec![0.0; bg.cols() * z],
            v2c: vec![0.0; bg.entries().len() * z],
        }
    }

    /// Codeword length in bits.
    pub fn codeword_len(&self) -> usize {
        self.bg.cols() * self.z
    }

    /// Information length in bits.
    pub fn info_len(&self) -> usize {
        self.bg.info_cols() * self.z
    }

    /// Decodes from channel LLRs (positive = bit 0 more likely), length
    /// [`Self::codeword_len`]. Punctured/untransmitted bits must carry LLR
    /// 0. Layered schedule.
    ///
    /// # Panics
    /// Panics if `llr.len() != self.codeword_len()`.
    pub fn decode(&mut self, llr: &[f32], cfg: &DecodeConfig) -> DecodeResult {
        assert_eq!(llr.len(), self.codeword_len(), "LLR length mismatch");
        let z = self.z;
        let rows = cfg.active_rows.unwrap_or(self.bg.rows()).min(self.bg.rows());
        self.post.copy_from_slice(llr);
        self.msgs.fill(0.0);

        let mut iterations = 0;
        for _iter in 0..cfg.max_iters {
            iterations += 1;
            for r in 0..rows {
                let row = self.bg.row_entries(r);
                let entry_base: usize = self.entry_offset(r);
                for i in 0..z {
                    // Gather extrinsic values t_e = post - old_msg.
                    let mut min1 = f32::INFINITY;
                    let mut min2 = f32::INFINITY;
                    let mut min_pos = usize::MAX;
                    let mut sign_prod = 1.0f32;
                    for (k, e) in row.iter().enumerate() {
                        let shift = e.shift as usize % z;
                        let bit = e.col as usize * z + (i + shift) % z;
                        let t = self.post[bit] - self.msgs[(entry_base + k) * z + i];
                        let a = t.abs();
                        if a < min1 {
                            min2 = min1;
                            min1 = a;
                            min_pos = k;
                        } else if a < min2 {
                            min2 = a;
                        }
                        if t < 0.0 {
                            sign_prod = -sign_prod;
                        }
                    }
                    let m1 = (min1 - cfg.offset).max(0.0);
                    let m2 = (min2 - cfg.offset).max(0.0);
                    // Scatter new messages and update posteriors.
                    for (k, e) in row.iter().enumerate() {
                        let shift = e.shift as usize % z;
                        let bit = e.col as usize * z + (i + shift) % z;
                        let midx = (entry_base + k) * z + i;
                        let t = self.post[bit] - self.msgs[midx];
                        let mag = if k == min_pos { m2 } else { m1 };
                        let s = if t < 0.0 { -sign_prod } else { sign_prod };
                        let new_msg = s * mag;
                        self.post[bit] = t + new_msg;
                        self.msgs[midx] = new_msg;
                    }
                }
            }
            if cfg.early_termination && self.syndrome_ok(rows) {
                break;
            }
        }

        let success = self.syndrome_ok(rows);
        let info_bits = self.post[..self.info_len()].iter().map(|&l| (l < 0.0) as u8).collect();
        DecodeResult { info_bits, success, iterations }
    }

    /// Flooding-schedule decode: all check nodes compute from the previous
    /// iteration's variable messages, then all variables update. Needs
    /// roughly 2x the iterations of the layered schedule for the same BER.
    pub fn decode_flooding(&mut self, llr: &[f32], cfg: &DecodeConfig) -> DecodeResult {
        assert_eq!(llr.len(), self.codeword_len(), "LLR length mismatch");
        let z = self.z;
        let rows = cfg.active_rows.unwrap_or(self.bg.rows()).min(self.bg.rows());
        self.post.copy_from_slice(llr);
        self.msgs.fill(0.0);
        // Variable-to-check messages from the previous half-iteration —
        // reused decoder scratch, so the hot path never allocates.
        self.v2c.fill(0.0);

        let mut iterations = 0;
        for _iter in 0..cfg.max_iters {
            iterations += 1;
            // Variable phase: v2c = post - c2v (extrinsic).
            for r in 0..rows {
                let row = self.bg.row_entries(r);
                let entry_base = self.entry_offset(r);
                for (k, e) in row.iter().enumerate() {
                    let shift = e.shift as usize % z;
                    for i in 0..z {
                        let bit = e.col as usize * z + (i + shift) % z;
                        let midx = (entry_base + k) * z + i;
                        self.v2c[midx] = self.post[bit] - self.msgs[midx];
                    }
                }
            }
            // Check phase + posterior rebuild.
            self.post.copy_from_slice(llr);
            for r in 0..rows {
                let row = self.bg.row_entries(r);
                let entry_base = self.entry_offset(r);
                for i in 0..z {
                    let mut min1 = f32::INFINITY;
                    let mut min2 = f32::INFINITY;
                    let mut min_pos = usize::MAX;
                    let mut sign_prod = 1.0f32;
                    for (k, _e) in row.iter().enumerate() {
                        let t = self.v2c[(entry_base + k) * z + i];
                        let a = t.abs();
                        if a < min1 {
                            min2 = min1;
                            min1 = a;
                            min_pos = k;
                        } else if a < min2 {
                            min2 = a;
                        }
                        if t < 0.0 {
                            sign_prod = -sign_prod;
                        }
                    }
                    let m1 = (min1 - cfg.offset).max(0.0);
                    let m2 = (min2 - cfg.offset).max(0.0);
                    for (k, e) in row.iter().enumerate() {
                        let shift = e.shift as usize % z;
                        let bit = e.col as usize * z + (i + shift) % z;
                        let midx = (entry_base + k) * z + i;
                        let t = self.v2c[midx];
                        let mag = if k == min_pos { m2 } else { m1 };
                        let s = if t < 0.0 { -sign_prod } else { sign_prod };
                        let new_msg = s * mag;
                        self.msgs[midx] = new_msg;
                        self.post[bit] += new_msg;
                    }
                }
            }
            if cfg.early_termination && self.syndrome_ok(rows) {
                break;
            }
        }

        let success = self.syndrome_ok(rows);
        let info_bits = self.post[..self.info_len()].iter().map(|&l| (l < 0.0) as u8).collect();
        DecodeResult { info_bits, success, iterations }
    }

    /// Index of the first entry of base row `r` in the flat entry array.
    fn entry_offset(&self, r: usize) -> usize {
        // `row_entries` slices are contiguous in `entries`, so the offset
        // is the pointer distance.
        let base = self.bg.entries().as_ptr() as usize;
        let row = self.bg.row_entries(r).as_ptr() as usize;
        (row - base) / core::mem::size_of::<crate::base_graph::BaseEntry>()
    }

    fn syndrome_ok(&self, rows: usize) -> bool {
        let z = self.z;
        for r in 0..rows {
            for i in 0..z {
                let mut parity = 0u8;
                for e in self.bg.row_entries(r) {
                    let shift = e.shift as usize % z;
                    let bit = e.col as usize * z + (i + shift) % z;
                    parity ^= (self.post[bit] < 0.0) as u8;
                }
                if parity != 0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 1) as u8
            })
            .collect()
    }

    /// Maps a codeword to noiseless BPSK LLRs, with the first 2Z bits
    /// punctured (LLR 0) as the standard requires.
    fn clean_llrs(cw: &[u8], z: usize, amp: f32) -> Vec<f32> {
        cw.iter()
            .enumerate()
            .map(|(i, &b)| {
                if i < 2 * z {
                    0.0
                } else if b == 0 {
                    amp
                } else {
                    -amp
                }
            })
            .collect()
    }

    fn noisy_llrs(cw: &[u8], z: usize, snr_db: f32, seed: u64) -> Vec<f32> {
        // BPSK over AWGN: y = x + n, LLR = 2y/sigma^2.
        let sigma2 = 10.0f32.powf(-snr_db / 10.0);
        let sigma = sigma2.sqrt();
        let mut state = seed | 1;
        let mut gauss = move || {
            // Box-Muller from two xorshift uniforms.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u1 = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u2 = (state >> 11) as f64 / (1u64 << 53) as f64;
            ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
        };
        cw.iter()
            .enumerate()
            .map(|(i, &b)| {
                if i < 2 * z {
                    return 0.0;
                }
                let x = if b == 0 { 1.0f32 } else { -1.0 };
                let y = x + sigma * gauss();
                2.0 * y / sigma2
            })
            .collect()
    }

    #[test]
    fn decodes_clean_codeword() {
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = Decoder::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 3);
        let cw = enc.encode(&info);
        let llr = clean_llrs(&cw, z, 8.0);
        let res = dec.decode(&llr, &DecodeConfig::default());
        assert!(res.success);
        assert_eq!(res.info_bits, info);
        // Early termination should kick in quickly on clean input.
        assert!(res.iterations <= 3, "took {} iterations", res.iterations);
    }

    #[test]
    fn decodes_noisy_codeword_at_moderate_snr() {
        let z = 16;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = Decoder::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 11);
        let cw = enc.encode(&info);
        // Rate ~1/3 code: 4 dB BPSK is comfortably above the waterfall.
        let llr = noisy_llrs(&cw, z, 4.0, 12345);
        let res = dec.decode(&llr, &DecodeConfig { max_iters: 20, ..Default::default() });
        assert!(res.success, "decode failed at 4 dB");
        assert_eq!(res.info_bits, info);
    }

    #[test]
    fn flooding_matches_layered_on_clean_input() {
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg2, z);
        let mut dec = Decoder::new(BaseGraphId::Bg2, z);
        let info = random_bits(enc.info_len(), 21);
        let cw = enc.encode(&info);
        let llr = clean_llrs(&cw, z, 8.0);
        let a = dec.decode(&llr, &DecodeConfig::default());
        let b = dec.decode_flooding(&llr, &DecodeConfig { max_iters: 10, ..Default::default() });
        assert!(a.success && b.success);
        assert_eq!(a.info_bits, info);
        assert_eq!(b.info_bits, info);
    }

    #[test]
    fn fails_gracefully_at_very_low_snr() {
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = Decoder::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 31);
        let cw = enc.encode(&info);
        let llr = noisy_llrs(&cw, z, -15.0, 999);
        let res = dec.decode(&llr, &DecodeConfig::default());
        // At -15 dB the decode must not succeed-and-be-wrong silently:
        // either success with correct bits (vanishingly unlikely) or
        // reported failure.
        if res.success {
            assert_eq!(res.info_bits, info);
        }
        assert_eq!(res.iterations, 5);
    }

    #[test]
    fn early_termination_counts_iterations() {
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = Decoder::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 41);
        let cw = enc.encode(&info);
        let llr = clean_llrs(&cw, z, 10.0);
        let with_et = dec.decode(&llr, &DecodeConfig::default());
        let without = dec.decode(
            &llr,
            &DecodeConfig { early_termination: false, max_iters: 5, ..Default::default() },
        );
        assert!(with_et.iterations < without.iterations);
        assert_eq!(without.iterations, 5);
        assert!(without.success);
    }

    #[test]
    fn active_rows_restricts_graph() {
        // With only the core rows active, a clean codeword still passes
        // (its checks are a subset).
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = Decoder::new(BaseGraphId::Bg1, z);
        let info = random_bits(enc.info_len(), 51);
        let cw = enc.encode(&info);
        let llr = clean_llrs(&cw, z, 8.0);
        let res = dec.decode(&llr, &DecodeConfig { active_rows: Some(10), ..Default::default() });
        assert!(res.success);
    }

    #[test]
    fn flooding_scratch_is_reused_across_decodes() {
        // The v2c buffer must live in the decoder (no per-call allocation):
        // its pointer and capacity are stable across repeated decodes.
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg2, z);
        let mut dec = Decoder::new(BaseGraphId::Bg2, z);
        let info = random_bits(enc.info_len(), 71);
        let llr = clean_llrs(&enc.encode(&info), z, 8.0);
        let ptr_before = dec.v2c.as_ptr();
        let cap_before = dec.v2c.capacity();
        for _ in 0..4 {
            let res =
                dec.decode_flooding(&llr, &DecodeConfig { max_iters: 10, ..Default::default() });
            assert!(res.success);
        }
        assert_eq!(dec.v2c.as_ptr(), ptr_before, "flooding scratch was reallocated");
        assert_eq!(dec.v2c.capacity(), cap_before, "flooding scratch capacity changed");
    }

    #[test]
    fn repeated_decodes_are_independent() {
        // Scratch state must not leak between calls.
        let z = 8;
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = Decoder::new(BaseGraphId::Bg1, z);
        let info_a = random_bits(enc.info_len(), 61);
        let info_b = random_bits(enc.info_len(), 62);
        let llr_a = clean_llrs(&enc.encode(&info_a), z, 8.0);
        let llr_b = clean_llrs(&enc.encode(&info_b), z, 8.0);
        let ra1 = dec.decode(&llr_a, &DecodeConfig::default());
        let rb = dec.decode(&llr_b, &DecodeConfig::default());
        let ra2 = dec.decode(&llr_a, &DecodeConfig::default());
        assert_eq!(ra1.info_bits, ra2.info_bits);
        assert_eq!(rb.info_bits, info_b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::encoder::Encoder;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any payload encodes to a valid codeword and decodes back
        /// through a clean channel — for arbitrary payload content and a
        /// spread of lifting sizes.
        #[test]
        fn encode_decode_roundtrip(
            seed in any::<u64>(),
            z_idx in 0usize..4,
        ) {
            let z = [4usize, 8, 12, 16][z_idx];
            let enc = Encoder::new(BaseGraphId::Bg2, z);
            let mut dec = Decoder::new(BaseGraphId::Bg2, z);
            let mut state = seed | 1;
            let info: Vec<u8> = (0..enc.info_len()).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 1) as u8
            }).collect();
            let cw = enc.encode(&info);
            prop_assert!(enc.check(&cw));
            let llr: Vec<f32> = cw.iter().enumerate().map(|(i, &b)| {
                if i < 2 * z { 0.0 } else if b == 0 { 6.0 } else { -6.0 }
            }).collect();
            let res = dec.decode(&llr, &DecodeConfig::default());
            prop_assert!(res.success);
            prop_assert_eq!(res.info_bits, info);
        }

        /// The decoder must never panic and never report success with
        /// wrong syndrome, for arbitrary LLR input.
        #[test]
        fn decoder_robust_to_arbitrary_llrs(
            llr_seed in any::<u64>(),
            scale in 0.1f32..20.0,
        ) {
            let z = 8;
            let mut dec = Decoder::new(BaseGraphId::Bg2, z);
            let mut state = llr_seed | 1;
            let llr: Vec<f32> = (0..dec.codeword_len()).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25) * scale
            }).collect();
            let res = dec.decode(&llr, &DecodeConfig::default());
            // If the decoder claims success, its output must genuinely be
            // a codeword.
            if res.success {
                let enc = Encoder::new(BaseGraphId::Bg2, z);
                let recoded = enc.encode(&res.info_bits);
                prop_assert!(enc.check(&recoded));
            }
        }
    }
}
