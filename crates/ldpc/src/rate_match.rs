//! Rate matching: mapping a mother-code codeword onto the transmitted
//! bit budget.
//!
//! The 5G NR LDPC mother code has a fixed rate (`22/66` for BG1 after
//! puncturing); higher rates transmit fewer extension-parity bits. The
//! first `2Z` systematic bits are *always* punctured. We implement the
//! zero-redundancy-version slice of the 5G circular buffer: transmit bits
//! `2Z .. 2Z + N` of the codeword where `N = used_cols * Z - 2Z` is set by
//! the target rate. The receiver re-inflates to mother-code length with
//! LLR 0 in the punctured/untransmitted positions and restricts the
//! decoder to the rows whose parity bits were sent.

use crate::base_graph::{BaseGraph, BaseGraphId, CORE_ROWS};

/// Rate-matching plan for one `(base graph, Z, rate)` triple.
#[derive(Debug, Clone, Copy)]
pub struct RateMatch {
    bg: &'static BaseGraph,
    z: usize,
    /// Base columns actually transmitted (includes the 2 punctured ones in
    /// the count, i.e. bits sent = `(used_cols - 2) * z`).
    used_cols: usize,
}

impl RateMatch {
    /// Plans rate matching for a target code rate `R = K / N_tx`.
    ///
    /// The achievable rate set is quantised by whole base columns: with
    /// `used_cols` base columns in play the achieved rate is
    /// `kb / (used_cols - 2)` (the 2 punctured systematic columns count
    /// toward `used_cols` but not toward transmitted bits). The plan
    /// scans the valid range `kb + CORE_ROWS ..= bg.cols()` and picks the
    /// column count whose achieved rate is *nearest* the target —
    /// rounding `kb / rate` in the column domain instead (as this used
    /// to) is biased because the achieved rate is a reciprocal of the
    /// column count, so a column count rounded to nearest is not always
    /// the rate rounded to nearest. The paper's three evaluation rates
    /// 1/3, 2/3 and 8/9 all land within 2% on BG1.
    ///
    /// # Panics
    /// Panics unless `0 < rate < 1`.
    pub fn for_rate(id: BaseGraphId, z: usize, rate: f32) -> Self {
        assert!(rate > 0.0 && rate < 1.0, "rate must be in (0, 1)");
        let bg = BaseGraph::get(id);
        let kb = bg.info_cols();
        let used_cols = (kb + CORE_ROWS..=bg.cols())
            .min_by(|&a, &b| {
                let ra = kb as f32 / (a - 2) as f32;
                let rb = kb as f32 / (b - 2) as f32;
                (ra - rate).abs().total_cmp(&(rb - rate).abs())
            })
            .expect("base graph has at least kb + CORE_ROWS columns");
        Self { bg, z, used_cols }
    }

    /// The lifting size.
    pub fn z(&self) -> usize {
        self.z
    }

    /// Number of transmitted bits per code block.
    pub fn tx_len(&self) -> usize {
        (self.used_cols - 2) * self.z
    }

    /// Information bits per code block.
    pub fn info_len(&self) -> usize {
        self.bg.info_cols() * self.z
    }

    /// The effective (achieved) code rate.
    pub fn effective_rate(&self) -> f32 {
        self.info_len() as f32 / self.tx_len() as f32
    }

    /// Mother-code codeword length.
    pub fn codeword_len(&self) -> usize {
        self.bg.cols() * self.z
    }

    /// Base rows the decoder should activate (rows whose parity columns
    /// were transmitted).
    pub fn active_rows(&self) -> usize {
        self.used_cols - self.bg.info_cols()
    }

    /// Extracts the transmitted bits from a full codeword.
    pub fn extract(&self, codeword: &[u8]) -> Vec<u8> {
        assert_eq!(codeword.len(), self.codeword_len());
        codeword[2 * self.z..self.used_cols * self.z].to_vec()
    }

    /// Re-inflates received LLRs (length [`Self::tx_len`]) to mother-code
    /// length, zero-filling punctured and untransmitted positions.
    pub fn fill_llrs(&self, rx_llrs: &[f32]) -> Vec<f32> {
        let mut full = vec![0.0f32; self.codeword_len()];
        self.fill_llrs_into(rx_llrs, &mut full);
        full
    }

    /// Allocation-free [`Self::fill_llrs`] into a caller-owned buffer of
    /// length [`Self::codeword_len`]. Generic over the LLR sample type so
    /// the same plan serves the `f32` and quantised `i8` planes.
    pub fn fill_llrs_into<T: Copy + Default>(&self, rx_llrs: &[T], full: &mut [T]) {
        assert_eq!(rx_llrs.len(), self.tx_len(), "received LLR length mismatch");
        assert_eq!(full.len(), self.codeword_len(), "full LLR length mismatch");
        full[..2 * self.z].fill(T::default());
        full[2 * self.z..self.used_cols * self.z].copy_from_slice(rx_llrs);
        full[self.used_cols * self.z..].fill(T::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{DecodeConfig, Decoder};
    use crate::encoder::Encoder;

    #[test]
    fn rate_one_third_uses_whole_bg1() {
        let rm = RateMatch::for_rate(BaseGraphId::Bg1, 104, 1.0 / 3.0);
        assert_eq!(rm.used_cols, 68);
        assert_eq!(rm.tx_len(), 6864); // the paper's code block size
        assert!((rm.effective_rate() - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn higher_rates_send_fewer_bits() {
        let r13 = RateMatch::for_rate(BaseGraphId::Bg1, 104, 1.0 / 3.0);
        let r23 = RateMatch::for_rate(BaseGraphId::Bg1, 104, 2.0 / 3.0);
        let r89 = RateMatch::for_rate(BaseGraphId::Bg1, 104, 8.0 / 9.0);
        assert!(r13.tx_len() > r23.tx_len());
        assert!(r23.tx_len() > r89.tx_len());
        assert!((r23.effective_rate() - 2.0 / 3.0).abs() < 0.03);
        assert!((r89.effective_rate() - 8.0 / 9.0).abs() < 0.05);
    }

    #[test]
    fn paper_rates_achieved_within_two_percent() {
        // The documented contract: the paper's three evaluation rates are
        // achievable on BG1 within 2% relative error.
        for target in [1.0f32 / 3.0, 2.0 / 3.0, 8.0 / 9.0] {
            let rm = RateMatch::for_rate(BaseGraphId::Bg1, 104, target);
            let rel = (rm.effective_rate() - target).abs() / target;
            assert!(
                rel < 0.02,
                "target {target}: achieved {} ({}% off)",
                rm.effective_rate(),
                rel * 100.0
            );
        }
    }

    #[test]
    fn picks_nearest_achievable_rate() {
        // No neighbouring column count may achieve a rate closer to the
        // target than the chosen one, across a dense sweep of targets.
        let kb = 22.0f32;
        let mut r = 0.20f32;
        while r < 0.92 {
            let rm = RateMatch::for_rate(BaseGraphId::Bg1, 8, r);
            let chosen = (rm.effective_rate() - r).abs();
            for alt in [rm.used_cols.saturating_sub(1), rm.used_cols + 1] {
                if (26..=68).contains(&alt) {
                    let alt_rate = kb / (alt - 2) as f32;
                    assert!(
                        chosen <= (alt_rate - r).abs() + 1e-6,
                        "target {r}: used_cols {} (rate {}) beaten by {alt} (rate {alt_rate})",
                        rm.used_cols,
                        rm.effective_rate()
                    );
                }
            }
            r += 0.013;
        }
    }

    #[test]
    fn active_rows_match_transmitted_parity() {
        let rm = RateMatch::for_rate(BaseGraphId::Bg1, 8, 8.0 / 9.0);
        // used_cols - kb parity columns transmitted -> that many rows.
        assert_eq!(rm.active_rows(), rm.used_cols - 22);
        assert!(rm.active_rows() >= CORE_ROWS);
    }

    #[test]
    fn extract_fill_roundtrip_positions() {
        let z = 8;
        let rm = RateMatch::for_rate(BaseGraphId::Bg1, z, 2.0 / 3.0);
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let info: Vec<u8> = (0..enc.info_len()).map(|i| (i % 2) as u8).collect();
        let cw = enc.encode(&info);
        let tx = rm.extract(&cw);
        assert_eq!(tx.len(), rm.tx_len());
        // Clean BPSK LLRs for the transmitted bits.
        let llrs: Vec<f32> = tx.iter().map(|&b| if b == 0 { 6.0 } else { -6.0 }).collect();
        let full = rm.fill_llrs(&llrs);
        assert_eq!(full.len(), rm.codeword_len());
        // Punctured head is zero.
        assert!(full[..2 * z].iter().all(|&l| l == 0.0));
        // Tail beyond used columns is zero.
        assert!(full[rm.used_cols * z..].iter().all(|&l| l == 0.0));
    }

    #[test]
    fn fill_llrs_into_matches_allocating_version_and_clears_stale_state() {
        let z = 8;
        let rm = RateMatch::for_rate(BaseGraphId::Bg1, z, 2.0 / 3.0);
        let rx: Vec<f32> = (0..rm.tx_len()).map(|i| i as f32 - 100.0).collect();
        let expect = rm.fill_llrs(&rx);
        // Poison the destination: every position must be overwritten.
        let mut full = vec![55.0f32; rm.codeword_len()];
        rm.fill_llrs_into(&rx, &mut full);
        assert_eq!(full, expect);
        // Same plan drives the i8 plane.
        let rx_q: Vec<i8> = (0..rm.tx_len()).map(|i| (i % 251) as i8).collect();
        let mut full_q = vec![99i8; rm.codeword_len()];
        rm.fill_llrs_into(&rx_q, &mut full_q);
        assert!(full_q[..2 * z].iter().all(|&l| l == 0));
        assert_eq!(&full_q[2 * z..rm.used_cols * z], &rx_q[..]);
        assert!(full_q[rm.used_cols * z..].iter().all(|&l| l == 0));
    }

    #[test]
    fn end_to_end_decode_at_high_rate() {
        let z = 16;
        let rm = RateMatch::for_rate(BaseGraphId::Bg1, z, 2.0 / 3.0);
        let enc = Encoder::new(BaseGraphId::Bg1, z);
        let mut dec = Decoder::new(BaseGraphId::Bg1, z);
        let info: Vec<u8> = (0..enc.info_len()).map(|i| ((i * 7) % 2) as u8).collect();
        let cw = enc.encode(&info);
        let tx = rm.extract(&cw);
        let llrs: Vec<f32> = tx.iter().map(|&b| if b == 0 { 6.0 } else { -6.0 }).collect();
        let full = rm.fill_llrs(&llrs);
        let res = dec.decode(
            &full,
            &DecodeConfig {
                active_rows: Some(rm.active_rows()),
                max_iters: 20,
                ..Default::default()
            },
        );
        assert!(res.success);
        assert_eq!(res.info_bits, info);
    }
}
