//! Work-stealing scheduler equivalence and counter sanity.
//!
//! The scheduler ablation (`Ablation::work_stealing`) only changes
//! *where* task messages queue and *which* worker executes them — every
//! kernel writes disjoint buffer regions determined solely by the
//! message coordinates, so `FrameResult`s must be bit-identical with
//! stealing on, stealing off, and the single-threaded inline reference,
//! for any worker count and batch-size mix.

use agora_core::{Engine, EngineConfig, FrameResult, InlineProcessor};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_phy::CellConfig;
use agora_queue::TaskType;
use proptest::prelude::*;

const FRAMES: u32 = 2;

fn generate(cell: &CellConfig, seed: u64) -> (Vec<bytes::Bytes>, f32) {
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 28.0, seed, ..Default::default() });
    let mut packets = Vec::new();
    for f in 0..FRAMES {
        let (p, _) = rru.generate_frame(f);
        packets.extend(p);
    }
    (packets, rru.noise_power())
}

fn results_equal(a: &[FrameResult], b: &[FrameResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.frame == y.frame
                && x.dropped == y.dropped
                && x.decode_ok == y.decode_ok
                && x.decoded == y.decoded
        })
}

fn sorted(mut r: Vec<FrameResult>) -> Vec<FrameResult> {
    r.sort_by_key(|f| f.frame);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stealing on == stealing off == inline, bit-identical, across
    /// random worker counts and batch-size mixes.
    #[test]
    fn scheduling_is_result_invariant(
        workers in 1usize..5,
        seed in 0u64..1024,
        fft_batch in 1usize..4,
        demod_batch in 16usize..128,
        decode_batch in 1usize..3,
    ) {
        let cell = CellConfig::tiny_test(2);
        let (packets, noise) = generate(&cell, seed);
        let mut cfg = EngineConfig::new(cell, workers);
        cfg.noise_power = noise;
        cfg.batch.fft = fft_batch;
        cfg.batch.demod = demod_batch;
        cfg.batch.decode = decode_batch;

        let mut stealing = cfg.clone();
        stealing.ablation.work_stealing = true;
        let with_lanes = sorted(Engine::new(stealing).process(packets.clone(), FRAMES, false));

        let mut monolithic = cfg.clone();
        monolithic.ablation.work_stealing = false;
        let shared = sorted(Engine::new(monolithic).process(packets.clone(), FRAMES, false));

        prop_assert!(
            results_equal(&with_lanes, &shared),
            "stealing on vs off differ (workers={workers} seed={seed})"
        );

        let mut inline = InlineProcessor::new(cfg);
        for f in 0..FRAMES {
            let per_frame: Vec<bytes::Bytes> = packets
                .iter()
                .filter(|p| agora_fronthaul::decode(p).unwrap().0.frame == f)
                .cloned()
                .collect();
            let reference = inline.process_frame(f, &per_frame);
            let t = with_lanes.iter().find(|r| r.frame == f).unwrap();
            prop_assert_eq!(
                &t.decoded, &reference.decoded,
                "frame {} differs from inline (workers={} seed={})", f, workers, seed
            );
        }
    }
}

/// With stealing on, every compute message goes through a lane first:
/// lane_pushes + lane_overflows must equal the total message count, and
/// an engine left idle must park its workers.
#[test]
fn sched_counters_account_for_every_message() {
    let cell = CellConfig::tiny_test(2);
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 28.0, seed: 7, ..Default::default() });
    let halves: Vec<Vec<bytes::Bytes>> = (0..2u32)
        .map(|half| {
            let mut packets = Vec::new();
            for f in (2 * half)..(2 * half + FRAMES) {
                let (p, _) = rru.generate_frame(f);
                packets.extend(p);
            }
            packets
        })
        .collect();
    let mut cfg = EngineConfig::new(cell, 2);
    cfg.noise_power = rru.noise_power();
    let engine = Engine::new(cfg);
    let results = engine.process(halves[0].clone(), FRAMES, false);
    assert_eq!(results.len(), FRAMES as usize);

    // Workers have nothing to do now: the idle ladder must reach Park.
    // The second batch's dispatch then has to wake them.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let results = engine.process(halves[1].clone(), FRAMES, false);
    assert_eq!(results.len(), FRAMES as usize);

    let stats = engine.stats();
    let compute = [
        TaskType::Fft,
        TaskType::Zf,
        TaskType::Demod,
        TaskType::Decode,
        TaskType::Encode,
        TaskType::Precode,
        TaskType::Ifft,
    ];
    let messages: u64 = compute.iter().map(|&t| stats.messages(t)).sum();
    assert!(messages > 0);
    assert_eq!(
        stats.lane_pushes() + stats.lane_overflows(),
        messages,
        "every dispatched message must hit a lane or be counted as overflow"
    );
    assert!(stats.lane_depth_max() > 0);
    assert!(stats.parks() > 0, "idle workers must park, not spin");
    assert!(stats.wakes() > 0, "dispatch must wake parked workers");
}

/// Tiny lanes force the overflow-to-shared-queue fallback; results must
/// still be correct and the overflow counter must fire.
#[test]
fn lane_overflow_falls_back_to_shared_queues() {
    let cell = CellConfig::tiny_test(2);
    let (packets, noise) = generate(&cell, 13);
    let mut cfg = EngineConfig::new(cell, 2);
    cfg.noise_power = noise;
    cfg.lane_capacity = 2;

    let overflowing = Engine::new(cfg.clone());
    let got = sorted(overflowing.process(packets.clone(), FRAMES, false));
    assert!(
        overflowing.stats().lane_overflows() > 0,
        "capacity-2 lanes must overflow to the shared queues"
    );

    let mut roomy_cfg = cfg;
    roomy_cfg.lane_capacity = 256;
    let roomy = Engine::new(roomy_cfg);
    let want = sorted(roomy.process(packets, FRAMES, false));
    assert!(results_equal(&got, &want), "overflow path changed decoded results");
}
