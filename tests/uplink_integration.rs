//! Cross-crate integration: emulated RRU -> fronthaul packets -> the
//! *threaded* manager/worker engine -> decoded bits vs ground truth.

use agora_core::{Engine, EngineConfig, InlineProcessor, WorkerPolicy};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_phy::CellConfig;
use agora_queue::TaskType;

fn tiny_cell() -> CellConfig {
    CellConfig::tiny_test(2)
}

fn generate(
    cell: &CellConfig,
    frames: u32,
    seed: u64,
) -> (Vec<bytes::Bytes>, Vec<agora_fronthaul::FrameGroundTruth>, f32) {
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 28.0, seed, ..Default::default() });
    let mut packets = Vec::new();
    let mut truths = Vec::new();
    for f in 0..frames {
        let (p, gt) = rru.generate_frame(f);
        packets.extend(p);
        truths.push(gt);
    }
    (packets, truths, rru.noise_power())
}

#[test]
fn threaded_engine_decodes_all_frames() {
    let cell = tiny_cell();
    let (packets, truths, noise) = generate(&cell, 3, 5);
    let mut cfg = EngineConfig::new(cell.clone(), 2);
    cfg.noise_power = noise;
    let engine = Engine::new(cfg);
    let results = engine.process(packets, 3, false);
    assert_eq!(results.len(), 3);
    for r in &results {
        let gt = &truths[r.frame as usize];
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                assert!(r.decode_ok[symbol][user], "frame {} sym {symbol} user {user}", r.frame);
                assert_eq!(
                    r.decoded[symbol][user], gt.info_bits[symbol][user],
                    "frame {} sym {symbol} user {user} bits differ",
                    r.frame
                );
            }
        }
        // Milestones must be causally ordered.
        let m = &r.milestones;
        assert!(m.pilot_done_ns >= m.first_packet_ns);
        assert!(m.zf_done_ns >= m.pilot_done_ns);
        assert!(m.decode_done_ns >= m.zf_done_ns);
    }
}

#[test]
fn threaded_engine_matches_inline_reference() {
    let cell = tiny_cell();
    let (packets, _truths, noise) = generate(&cell, 2, 11);
    let mut cfg = EngineConfig::new(cell.clone(), 2);
    cfg.noise_power = noise;

    let engine = Engine::new(cfg.clone());
    let threaded = engine.process(packets.clone(), 2, false);

    let mut inline = InlineProcessor::new(cfg);
    for f in 0..2u32 {
        let per_frame: Vec<bytes::Bytes> = packets
            .iter()
            .filter(|p| agora_fronthaul::decode(p).unwrap().0.frame == f)
            .cloned()
            .collect();
        let reference = inline.process_frame(f, &per_frame);
        let t = threaded.iter().find(|r| r.frame == f).unwrap();
        assert_eq!(t.decoded, reference.decoded, "frame {f} differs from reference");
    }
}

#[test]
fn pipeline_parallel_policy_also_decodes() {
    let cell = tiny_cell();
    let (packets, truths, noise) = generate(&cell, 2, 17);
    let mut cfg = EngineConfig::new(cell.clone(), 3);
    cfg.noise_power = noise;
    // Static groups: worker 0 FFT+ZF, worker 1 demod, worker 2 decode.
    let policy = WorkerPolicy::PipelineParallel(vec![
        vec![TaskType::Fft, TaskType::Zf],
        vec![TaskType::Demod, TaskType::Precode, TaskType::Encode, TaskType::Ifft],
        vec![TaskType::Decode],
    ]);
    let engine = Engine::with_policy(cfg, policy);
    let results = engine.process(packets, 2, false);
    assert_eq!(results.len(), 2);
    for r in &results {
        let gt = &truths[r.frame as usize];
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                assert!(r.decode_ok[symbol][user]);
                assert_eq!(r.decoded[symbol][user], gt.info_bits[symbol][user]);
            }
        }
    }
}

#[test]
fn engine_reports_per_block_stats() {
    let cell = tiny_cell();
    let (packets, _t, noise) = generate(&cell, 2, 23);
    let mut cfg = EngineConfig::new(cell.clone(), 2);
    cfg.noise_power = noise;
    let engine = Engine::new(cfg);
    let _ = engine.process(packets, 2, false);
    let stats = engine.stats();
    // Task counts per frame: FFT = M * (1 pilot + 2 UL) = 24, ZF = 15
    // groups, demod = 240 SCs, decode = 2 users x 2 symbols.
    assert_eq!(stats.tasks(TaskType::Fft), 2 * 24);
    assert_eq!(stats.tasks(TaskType::Zf), 2 * 15);
    assert_eq!(stats.tasks(TaskType::Demod), 2 * 480);
    assert_eq!(stats.tasks(TaskType::Decode), 2 * 4);
    assert!(stats.busy_ns(TaskType::Decode) > 0);
    // Batching reduced message counts below task counts.
    assert!(stats.messages(TaskType::Fft) < stats.tasks(TaskType::Fft));
    assert!(stats.messages(TaskType::Demod) < stats.tasks(TaskType::Demod));
}

#[test]
fn paced_processing_tracks_frame_rate() {
    // Pace a short run at a 200 us symbol so the test stays fast:
    // 3 symbols/frame * 2 frames = 6 symbol slots ~ 1.2 ms wall clock.
    let mut cell = tiny_cell();
    cell.symbol_duration_ns = 200_000;
    let (packets, _t, noise) = generate(&cell, 2, 31);
    let mut cfg = EngineConfig::new(cell.clone(), 2);
    cfg.noise_power = noise;
    let engine = Engine::new(cfg);
    let results = engine.process(packets, 2, true);
    assert_eq!(results.len(), 2);
    // Frame 1's first packet cannot arrive before one frame duration.
    let f1 = results.iter().find(|r| r.frame == 1).unwrap();
    assert!(
        f1.milestones.first_packet_ns >= cell.frame_duration_ns() * 9 / 10,
        "paced frame 1 arrived too early: {} ns",
        f1.milestones.first_packet_ns
    );
}

#[test]
fn stale_precoder_engine_beams_correctly_on_static_channel() {
    use agora_fft::{Direction, FftPlan, SubcarrierMap};
    use agora_ldpc::{DecodeConfig, Decoder};
    use agora_math::Cf32;
    use agora_phy::demod::demod_soft;
    use agora_phy::frame::FrameSchedule;

    // Static channel: the previous frame's precoder is exactly right, so
    // the early-started downlink symbols must decode cleanly at users.
    let mut cell = CellConfig::tiny_test(0);
    cell.schedule = FrameSchedule::parse("PDD").unwrap();
    let mut rru = agora_fronthaul::RruEmulator::new(
        cell.clone(),
        agora_fronthaul::RruConfig {
            snr_db: 40.0,
            seed: 77,
            redraw_channel: false,
            ..Default::default()
        },
    );
    let mut cfg = EngineConfig::new(cell.clone(), 2);
    cfg.noise_power = 1e-3;
    cfg.stale_precoder = true;
    let engine = Engine::new(cfg);

    let mut packets = Vec::new();
    let mut truths = Vec::new();
    for f in 0..3u32 {
        let (p, gt) = rru.generate_frame(f);
        packets.extend(p);
        truths.push(gt);
    }
    let results = engine.process(packets, 3, false);
    assert_eq!(results.len(), 3);

    // Verify the downlink of the *last* frame at simulated users: even if
    // its first symbols were precoded with frame 1's (identical) CSI.
    let g_k = cell.num_users;
    let map = SubcarrierMap::new(cell.fft_size, cell.num_data_sc);
    let plan = FftPlan::new(cell.fft_size);
    let rm = cell.ldpc.rate_match();
    let mut dec = Decoder::new(cell.ldpc.base_graph, cell.ldpc.z);
    let frame = 2u32;
    let gt = &truths[frame as usize];

    // Recover the engine's transmitted time-domain samples: the engine
    // does not expose dl_time through FrameResult, so reprocess inline
    // with the same stale flag and compare bits end-to-end instead.
    let mut inline_cfg = EngineConfig::new(cell.clone(), 1);
    inline_cfg.noise_power = 1e-3;
    let mut inline = InlineProcessor::new(inline_cfg);
    let per_frame: Vec<bytes::Bytes> = Vec::new();
    let _ = per_frame; // packets for DL frames are pilots only; reuse RRU
    let mut rru2 = agora_fronthaul::RruEmulator::new(
        cell.clone(),
        agora_fronthaul::RruConfig {
            snr_db: 40.0,
            seed: 77,
            redraw_channel: false,
            ..Default::default()
        },
    );
    let (pk, _) = rru2.generate_frame(0);
    let res = inline.process_frame(0, &pk);
    for symbol in cell.schedule.downlink_indices() {
        let mut grids: Vec<Vec<Cf32>> = Vec::new();
        for ant in 0..cell.num_antennas {
            let mut grid = res.dl_time[symbol][ant].clone();
            plan.execute(&mut grid, Direction::Forward);
            grids.push(grid);
        }
        for user in 0..g_k {
            let mut rx = vec![Cf32::ZERO; cell.fft_size];
            for (ant, grid) in grids.iter().enumerate() {
                let h = gt.h[(ant, user)];
                for (acc, &v) in rx.iter_mut().zip(grid.iter()) {
                    *acc = h.mul_add(v, *acc);
                }
            }
            let mut active = vec![Cf32::ZERO; cell.num_data_sc];
            map.demap_symbols(&rx, &mut active);
            let p: f32 = active.iter().map(|z| z.norm_sqr()).sum::<f32>() / active.len() as f32;
            for z in active.iter_mut() {
                *z = z.scale(1.0 / p.sqrt().max(1e-12));
            }
            let mut llrs = Vec::new();
            demod_soft(cell.modulation, &active, 0.05, &mut llrs);
            let full = rm.fill_llrs(&llrs[..rm.tx_len()]);
            let out = dec.decode(
                &full,
                &DecodeConfig {
                    max_iters: 20,
                    active_rows: Some(rm.active_rows()),
                    ..Default::default()
                },
            );
            assert!(out.success, "stale-precoder DL decode failed (sym {symbol} user {user})");
        }
    }
}

#[test]
fn lost_packets_drop_frame_instead_of_hanging() {
    // Drop every packet of frame 1's last symbol: the engine must emit
    // frames 0 and 2 normally and abandon frame 1 with a partial result.
    let cell = tiny_cell();
    let (packets, truths, noise) = generate(&cell, 3, 41);
    let last_symbol = (cell.symbols_per_frame() - 1) as u16;
    let filtered: Vec<bytes::Bytes> = packets
        .into_iter()
        .filter(|p| {
            let (h, _) = agora_fronthaul::decode(p).unwrap();
            !(h.frame == 1 && h.symbol == last_symbol)
        })
        .collect();
    let mut cfg = EngineConfig::new(cell.clone(), 2);
    cfg.noise_power = noise;
    let engine = Engine::new(cfg);
    let results = engine.process(filtered, 3, false);
    assert_eq!(results.len(), 3);
    for r in &results {
        match r.frame {
            1 => assert!(r.dropped, "frame 1 must be marked dropped"),
            f => {
                assert!(!r.dropped, "frame {f} must complete");
                for symbol in cell.schedule.uplink_indices() {
                    for user in 0..cell.num_users {
                        assert_eq!(
                            r.decoded[symbol][user],
                            truths[f as usize].info_bits[symbol][user]
                        );
                    }
                }
            }
        }
    }
}
