//! Full-stack test: MAC transport blocks ride the complete air
//! interface — segmentation, LDPC, OFDM, the emulated channel, the
//! engine's receive chain, and reassembly with end-to-end CRC.

use agora_core::{EngineConfig, InlineProcessor};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_mac::{Segmenter, TransportBlock};
use agora_phy::CellConfig;

#[test]
fn transport_blocks_survive_the_air_interface() {
    let cell = CellConfig::tiny_test(4);
    let seg = Segmenter::for_cell(&cell);
    // One transport block per user, distinct content.
    let tbs: Vec<TransportBlock> = (0..cell.num_users)
        .map(|u| {
            TransportBlock::new(
                (0..seg.max_payload_bytes()).map(|i| (i as u8).wrapping_mul(7 + u as u8)).collect(),
            )
        })
        .collect();
    let segments: Vec<Vec<Vec<u8>>> = tbs.iter().map(|tb| seg.segment(tb)).collect();

    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 28.0, seed: 13, ..Default::default() });
    let ul_symbols = cell.schedule.uplink_indices();
    let (packets, _gt) = rru.generate_frame_with_bits(
        0,
        Some(&|symbol, user| {
            let slot = ul_symbols.iter().position(|&s| s == symbol).unwrap();
            segments[user][slot].clone()
        }),
    );

    let mut cfg = EngineConfig::new(cell.clone(), 1);
    cfg.noise_power = rru.noise_power();
    let mut engine = InlineProcessor::new(cfg);
    let res = engine.process_frame(0, &packets);

    for (user, tb) in tbs.iter().enumerate() {
        let decoded: Vec<(Vec<u8>, bool)> = ul_symbols
            .iter()
            .map(|&s| (res.decoded[s][user].clone(), res.decode_ok[s][user]))
            .collect();
        let out = seg.reassemble(&decoded).expect("reassembly failed");
        assert_eq!(&out, tb, "user {user} transport block corrupted");
    }
}

#[test]
fn failed_decode_surfaces_as_lost_segment() {
    let cell = CellConfig::tiny_test(2);
    let seg = Segmenter::for_cell(&cell);
    let tb = TransportBlock::new(vec![0xAB; 16]);
    let parts = seg.segment(&tb);
    // Simulate the engine flagging the second symbol's decode as failed.
    let rx = vec![(parts[0].clone(), true), (parts[1].clone(), false)];
    assert!(matches!(
        seg.reassemble(&rx),
        Err(agora_mac::ReassembleError::SegmentLost { segment: 1 })
    ));
}
