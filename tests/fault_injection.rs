//! Acceptance test for the fault-injected fronthaul: a 64x16 uplink
//! cell pushed through `FaultInjector` (i.i.d. loss + reordering +
//! duplication) must neither hang nor panic. Every frame yields a
//! result within its deadline: clean frames decode perfectly, lossy
//! frames come back `dropped: true` with partial output, and the
//! engine's loss/late/duplicate counters reconcile exactly with the
//! injector's ground-truth fault log under a fixed seed.

use agora_core::{Engine, EngineConfig};
use agora_fronthaul::{
    decode_ref, FaultConfig, FaultInjector, Fronthaul, LossModel, MemFronthaul, MultiCellGenerator,
    PacketBuf, PacketPool, RruConfig, RruEmulator, UdpFronthaul,
};
use agora_ldpc::BaseGraphId;
use agora_phy::frame::LdpcParams;
use agora_phy::pilots::PilotScheme;
use agora_phy::{CellConfig, FrameSchedule, ModScheme};

/// A reduced 64-antenna, 16-user cell: full paper antenna/user counts
/// but a 128-point FFT and a short BG2 code so the debug-build test
/// finishes in seconds rather than minutes.
fn cell_64x16() -> CellConfig {
    let cell = CellConfig {
        num_antennas: 64,
        num_users: 16,
        fft_size: 128,
        num_data_sc: 64,
        cp_len: 0,
        modulation: ModScheme::Qpsk,
        pilot_scheme: PilotScheme::FrequencyOrthogonal,
        zf_group: 16,
        ldpc: LdpcParams { base_graph: BaseGraphId::Bg2, z: 4, rate: 1.0 / 3.0, max_iters: 8 },
        schedule: FrameSchedule::uplink(1, 2),
        symbol_duration_ns: 71_000,
    };
    cell.validate().expect("64x16 reduced cell must validate");
    cell
}

const FRAMES: u32 = 8;

fn faulted_packets(
    cell: &CellConfig,
) -> (Vec<bytes::Bytes>, Vec<agora_fronthaul::FrameGroundTruth>, f32, FaultInjector) {
    let mut rru = RruEmulator::new(
        cell.clone(),
        RruConfig { snr_db: 30.0, seed: 4242, ..Default::default() },
    );
    let mut packets = Vec::new();
    let mut truths = Vec::new();
    for f in 0..FRAMES {
        let (p, gt) = rru.generate_frame(f);
        packets.extend(p);
        truths.push(gt);
    }
    let noise = rru.noise_power();
    let mut inj = FaultInjector::new(FaultConfig {
        loss: LossModel::Iid { p: 0.01 },
        reorder_prob: 0.05,
        max_delay: 16,
        duplicate_prob: 0.01,
        seed: 7,
    });
    let faulted = inj.apply(packets);
    (faulted, truths, noise, inj)
}

#[test]
fn lossy_uplink_completes_every_frame_with_reconciled_counters() {
    let cell = cell_64x16();
    let (faulted, truths, noise, inj) = faulted_packets(&cell);
    let fs = inj.stats().clone();
    assert!(fs.lost > 0, "1% over {} packets must lose some", fs.offered);
    assert!(fs.duplicated > 0, "1% duplication must inject some");
    assert!(fs.reordered > 0, "5% reordering must displace some");

    let mut cfg = EngineConfig::new(cell.clone(), 3);
    cfg.noise_power = noise;
    cfg.frame_deadline_ns = Some(700_000_000);
    let engine = Engine::new(cfg);
    let results = engine.process(faulted, FRAMES, false);

    // No hang, no panic: every frame produced a result.
    assert_eq!(results.len(), FRAMES as usize);

    let stats = engine.stats();
    // The engine's loss counter reconciles exactly with the injector's
    // ground truth: a packet is "lost" iff the injector removed it.
    assert_eq!(stats.packets_lost(), fs.lost, "loss counters must reconcile");
    // Every injected duplicate is rejected exactly once — either as a
    // duplicate (frame still in flight) or as late (frame already
    // retired). The split depends on worker timing; the sum does not.
    assert_eq!(
        stats.packets_duplicate() + stats.packets_late(),
        fs.duplicated,
        "dup+late must equal injected duplicates"
    );
    assert_eq!(
        stats.frames_completed() + stats.frames_dropped(),
        FRAMES as u64,
        "every frame is either completed or dropped"
    );

    for r in &results {
        let lost_here = fs.per_frame_lost.get(&r.frame).copied().unwrap_or(0);
        // A frame is dropped iff the injector removed one of its packets.
        assert_eq!(
            r.dropped,
            lost_here > 0,
            "frame {}: dropped={} but injector lost {} of its packets",
            r.frame,
            r.dropped,
            lost_here
        );
        assert_eq!(r.lost_packets, lost_here, "frame {} lost-packet count", r.frame);
        if !r.dropped {
            // Clean frames decode perfectly despite reordering and dups.
            let gt = &truths[r.frame as usize];
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    assert!(
                        r.decode_ok[symbol][user],
                        "frame {} sym {symbol} user {user}",
                        r.frame
                    );
                    assert_eq!(r.decoded[symbol][user], gt.info_bits[symbol][user]);
                }
            }
        } else {
            // Partial output: the result still carries the full per-
            // symbol structure (no stale/partial buffer access panics).
            assert_eq!(r.decoded.len(), cell.symbols_per_frame());
        }
    }
}

#[test]
fn fault_injection_is_deterministic_end_to_end() {
    let cell = cell_64x16();
    let (a_pkts, _, _, a_inj) = faulted_packets(&cell);
    let (b_pkts, _, _, b_inj) = faulted_packets(&cell);
    // Same seeds => byte-identical fault pattern and packet stream.
    assert_eq!(a_pkts.len(), b_pkts.len());
    assert!(a_pkts.iter().zip(&b_pkts).all(|(x, y)| x == y));
    let (sa, sb) = (a_inj.stats(), b_inj.stats());
    assert_eq!(sa.lost, sb.lost);
    assert_eq!(sa.duplicated, sb.duplicated);
    assert_eq!(sa.reordered, sb.reordered);
    assert_eq!(sa.per_frame_lost, sb.per_frame_lost);
}

/// The paced multi-cell generator drives C=4 cell streams through one
/// batched link with inline fault injection; a demuxing receiver feeds
/// one engine per cell, and every per-cell loss/late/dup ledger must
/// reconcile exactly with the injector's ground truth.
#[test]
fn multi_cell_streams_over_one_link_reconcile_per_cell() {
    const CELLS: usize = 4;
    const MC_FRAMES: u32 = 4;
    let cell = CellConfig::tiny_test(2);
    let rrus: Vec<RruEmulator> = (0..CELLS)
        .map(|c| {
            RruEmulator::new(
                cell.clone(),
                RruConfig {
                    snr_db: 30.0,
                    seed: 1000 + c as u64,
                    cell_id: c as u8,
                    ..Default::default()
                },
            )
        })
        .collect();
    let noise: Vec<f32> = rrus.iter().map(|r| r.noise_power()).collect();
    let per_cell_frame = cell.symbols_per_frame() * cell.num_antennas;
    let mut gen = MultiCellGenerator::new(rrus).with_faults(FaultConfig {
        loss: LossModel::Iid { p: 0.03 },
        reorder_prob: 0.05,
        max_delay: 8,
        duplicate_prob: 0.03,
        seed: 11,
    });
    // One lossless batched link (the DPDK stand-in ring) carries all
    // four interleaved cell streams, sized for the whole run so the
    // reconciliation below is exact rather than modulo socket drops.
    let capacity = (2 * CELLS * per_cell_frame * MC_FRAMES as usize).next_power_of_two();
    let (tx, rx) = MemFronthaul::pair(capacity);
    let truths = gen.run(&tx, MC_FRAMES);
    let fs = gen.stats().clone();
    assert!(fs.lost > 0, "3% loss over the run must fire");
    assert!(fs.duplicated > 0, "3% duplication must fire");

    // Demux the merged stream by header cell id, in batches.
    let mut per_cell_pkts: Vec<Vec<bytes::Bytes>> = vec![Vec::new(); CELLS];
    let mut batch = Vec::new();
    let mut delivered = 0u64;
    while rx.recv_batch(&mut batch, 64) > 0 {
        for pkt in batch.drain(..) {
            let cell_id = decode_ref(&pkt).expect("generator emits valid packets").0.cell;
            per_cell_pkts[cell_id as usize].push(pkt.into_bytes());
            delivered += 1;
        }
    }
    assert_eq!(delivered, fs.delivered, "lossless link: every surviving packet arrives");

    for c in 0..CELLS {
        let cid = c as u8;
        let lost_c = fs.per_cell_lost.get(&cid).copied().unwrap_or(0);
        let dup_c = fs.per_cell_duplicated.get(&cid).copied().unwrap_or(0);
        assert_eq!(
            per_cell_pkts[c].len() as u64,
            fs.per_cell_delivered.get(&cid).copied().unwrap_or(0),
            "cell {c}: demuxed count matches the injector's delivery ledger"
        );
        let mut cfg = EngineConfig::new(cell.clone(), 3);
        cfg.noise_power = noise[c];
        cfg.frame_deadline_ns = Some(700_000_000);
        let engine = Engine::new(cfg);
        let results = engine.process(per_cell_pkts[c].clone(), MC_FRAMES, false);
        assert_eq!(results.len(), MC_FRAMES as usize);
        let stats = engine.stats();
        assert_eq!(stats.packets_lost(), lost_c, "cell {c}: loss ledger must reconcile");
        assert_eq!(
            stats.packets_duplicate() + stats.packets_late(),
            dup_c,
            "cell {c}: dup+late must equal injected duplicates"
        );
        for r in &results {
            let lost_here = fs.per_cell_frame_lost.get(&(cid, r.frame)).copied().unwrap_or(0);
            assert_eq!(
                r.dropped,
                lost_here > 0,
                "cell {c} frame {}: dropped={} with {} lost packets",
                r.frame,
                r.dropped,
                lost_here
            );
            if !r.dropped {
                let gt = &truths[c][r.frame as usize];
                for symbol in cell.schedule.uplink_indices() {
                    for user in 0..cell.num_users {
                        assert!(
                            r.decode_ok[symbol][user],
                            "cell {c} frame {} sym {symbol} user {user}",
                            r.frame
                        );
                        assert_eq!(r.decoded[symbol][user], gt.info_bits[symbol][user]);
                    }
                }
            }
        }
    }
}

/// Pooled packet buffers parked in the engine's zero-copy slot tables
/// must all return to the pool, even for frames the engine abandons
/// (their retained packets are freed on slot reuse or engine teardown).
#[test]
fn abandoned_frames_release_pooled_packets() {
    use std::collections::VecDeque;
    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicBool, Ordering};

    let cell = CellConfig::tiny_test(2);
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 30.0, seed: 5, ..Default::default() });
    let frames = 2u32;
    let mut packets = Vec::new();
    for f in 0..frames {
        let (p, _gt) = rru.generate_frame(f);
        packets.extend(p);
    }
    // Drop a few of frame 1's packets so the engine must abandon it
    // with pooled packets still parked in its slot table.
    let before = packets.len();
    packets.retain(|p| {
        let (h, _) = decode_ref(p).unwrap();
        !(h.frame == 1 && h.symbol == 0 && h.antenna < 3)
    });
    assert!(packets.len() < before, "some frame-1 packets must be removed");

    let pool = PacketPool::new(128, 4096);
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut tx = UdpFronthaul::new(any, any).unwrap();
    let rx = UdpFronthaul::new(any, tx.local_addr().unwrap()).unwrap().with_pool(pool.clone());
    tx.set_peer(rx.local_addr().unwrap());

    let mut cfg = EngineConfig::new(cell.clone(), 2);
    cfg.noise_power = rru.noise_power();
    cfg.frame_deadline_ns = Some(300_000_000);
    let engine = Engine::new(cfg);
    let done = AtomicBool::new(false);
    let results = std::thread::scope(|s| {
        s.spawn(|| {
            let mut out: VecDeque<PacketBuf> =
                packets.iter().cloned().map(PacketBuf::Heap).collect();
            while !out.is_empty() {
                if tx.send_batch(&mut out) == 0 {
                    std::thread::yield_now();
                }
            }
            done.store(true, Ordering::Release);
        });
        engine.process_fronthaul(&rx, frames, &done)
    });
    assert_eq!(results.len(), frames as usize);
    assert!(
        results.iter().any(|r| r.dropped && r.frame == 1),
        "frame 1 must be abandoned (packets withheld)"
    );
    assert!(
        results.iter().any(|r| !r.dropped && r.frame == 0),
        "frame 0 arrived whole and must complete"
    );
    // Tearing down the engine joins its workers and frees the frame
    // window, dropping every packet the abandoned frame still retained;
    // dropping the endpoint returns its staged receive slots.
    drop(engine);
    drop(rx);
    assert_eq!(pool.available(), pool.capacity(), "no pooled slot may leak");
}
