//! Acceptance test for the fault-injected fronthaul: a 64x16 uplink
//! cell pushed through `FaultInjector` (i.i.d. loss + reordering +
//! duplication) must neither hang nor panic. Every frame yields a
//! result within its deadline: clean frames decode perfectly, lossy
//! frames come back `dropped: true` with partial output, and the
//! engine's loss/late/duplicate counters reconcile exactly with the
//! injector's ground-truth fault log under a fixed seed.

use agora_core::{Engine, EngineConfig};
use agora_fronthaul::{FaultConfig, FaultInjector, LossModel, RruConfig, RruEmulator};
use agora_ldpc::BaseGraphId;
use agora_phy::frame::LdpcParams;
use agora_phy::pilots::PilotScheme;
use agora_phy::{CellConfig, FrameSchedule, ModScheme};

/// A reduced 64-antenna, 16-user cell: full paper antenna/user counts
/// but a 128-point FFT and a short BG2 code so the debug-build test
/// finishes in seconds rather than minutes.
fn cell_64x16() -> CellConfig {
    let cell = CellConfig {
        num_antennas: 64,
        num_users: 16,
        fft_size: 128,
        num_data_sc: 64,
        cp_len: 0,
        modulation: ModScheme::Qpsk,
        pilot_scheme: PilotScheme::FrequencyOrthogonal,
        zf_group: 16,
        ldpc: LdpcParams { base_graph: BaseGraphId::Bg2, z: 4, rate: 1.0 / 3.0, max_iters: 8 },
        schedule: FrameSchedule::uplink(1, 2),
        symbol_duration_ns: 71_000,
    };
    cell.validate().expect("64x16 reduced cell must validate");
    cell
}

const FRAMES: u32 = 8;

fn faulted_packets(
    cell: &CellConfig,
) -> (Vec<bytes::Bytes>, Vec<agora_fronthaul::FrameGroundTruth>, f32, FaultInjector) {
    let mut rru = RruEmulator::new(
        cell.clone(),
        RruConfig { snr_db: 30.0, seed: 4242, ..Default::default() },
    );
    let mut packets = Vec::new();
    let mut truths = Vec::new();
    for f in 0..FRAMES {
        let (p, gt) = rru.generate_frame(f);
        packets.extend(p);
        truths.push(gt);
    }
    let noise = rru.noise_power();
    let mut inj = FaultInjector::new(FaultConfig {
        loss: LossModel::Iid { p: 0.01 },
        reorder_prob: 0.05,
        max_delay: 16,
        duplicate_prob: 0.01,
        seed: 7,
    });
    let faulted = inj.apply(packets);
    (faulted, truths, noise, inj)
}

#[test]
fn lossy_uplink_completes_every_frame_with_reconciled_counters() {
    let cell = cell_64x16();
    let (faulted, truths, noise, inj) = faulted_packets(&cell);
    let fs = inj.stats().clone();
    assert!(fs.lost > 0, "1% over {} packets must lose some", fs.offered);
    assert!(fs.duplicated > 0, "1% duplication must inject some");
    assert!(fs.reordered > 0, "5% reordering must displace some");

    let mut cfg = EngineConfig::new(cell.clone(), 3);
    cfg.noise_power = noise;
    cfg.frame_deadline_ns = Some(700_000_000);
    let engine = Engine::new(cfg);
    let results = engine.process(faulted, FRAMES, false);

    // No hang, no panic: every frame produced a result.
    assert_eq!(results.len(), FRAMES as usize);

    let stats = engine.stats();
    // The engine's loss counter reconciles exactly with the injector's
    // ground truth: a packet is "lost" iff the injector removed it.
    assert_eq!(stats.packets_lost(), fs.lost, "loss counters must reconcile");
    // Every injected duplicate is rejected exactly once — either as a
    // duplicate (frame still in flight) or as late (frame already
    // retired). The split depends on worker timing; the sum does not.
    assert_eq!(
        stats.packets_duplicate() + stats.packets_late(),
        fs.duplicated,
        "dup+late must equal injected duplicates"
    );
    assert_eq!(
        stats.frames_completed() + stats.frames_dropped(),
        FRAMES as u64,
        "every frame is either completed or dropped"
    );

    for r in &results {
        let lost_here = fs.per_frame_lost.get(&r.frame).copied().unwrap_or(0);
        // A frame is dropped iff the injector removed one of its packets.
        assert_eq!(
            r.dropped,
            lost_here > 0,
            "frame {}: dropped={} but injector lost {} of its packets",
            r.frame,
            r.dropped,
            lost_here
        );
        assert_eq!(r.lost_packets, lost_here, "frame {} lost-packet count", r.frame);
        if !r.dropped {
            // Clean frames decode perfectly despite reordering and dups.
            let gt = &truths[r.frame as usize];
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    assert!(
                        r.decode_ok[symbol][user],
                        "frame {} sym {symbol} user {user}",
                        r.frame
                    );
                    assert_eq!(r.decoded[symbol][user], gt.info_bits[symbol][user]);
                }
            }
        } else {
            // Partial output: the result still carries the full per-
            // symbol structure (no stale/partial buffer access panics).
            assert_eq!(r.decoded.len(), cell.symbols_per_frame());
        }
    }
}

#[test]
fn fault_injection_is_deterministic_end_to_end() {
    let cell = cell_64x16();
    let (a_pkts, _, _, a_inj) = faulted_packets(&cell);
    let (b_pkts, _, _, b_inj) = faulted_packets(&cell);
    // Same seeds => byte-identical fault pattern and packet stream.
    assert_eq!(a_pkts.len(), b_pkts.len());
    assert!(a_pkts.iter().zip(&b_pkts).all(|(x, y)| x == y));
    let (sa, sb) = (a_inj.stats(), b_inj.stats());
    assert_eq!(sa.lost, sb.lost);
    assert_eq!(sa.duplicated, sb.duplicated);
    assert_eq!(sa.reordered, sb.reordered);
    assert_eq!(sa.per_frame_lost, sb.per_frame_lost);
}
