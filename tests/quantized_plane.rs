//! End-to-end acceptance for the fixed-point decoding plane
//! (`ablation.quantized_decoder`): demodulation emits saturating `i8`
//! LLRs and `decode_task` routes through the Z-lane-vectorised i8
//! layered min-sum decoder. The toggle is the A/B for float vs
//! fixed-point fig-style runs, so it must (a) decode every frame
//! correctly at operating SNR, (b) agree bit-for-bit between the
//! threaded engine and the inline reference, (c) agree with the float
//! plane's decoded bits, and (d) keep the engine's fault counters
//! reconciling under injected fronthaul loss.

use agora_core::{Engine, EngineConfig, InlineProcessor};
use agora_fronthaul::{FaultConfig, FaultInjector, LossModel, RruConfig, RruEmulator};
use agora_ldpc::BaseGraphId;
use agora_phy::frame::LdpcParams;
use agora_phy::pilots::PilotScheme;
use agora_phy::{CellConfig, FrameSchedule, ModScheme};

fn generate(
    cell: &CellConfig,
    frames: u32,
    seed: u64,
) -> (Vec<bytes::Bytes>, Vec<agora_fronthaul::FrameGroundTruth>, f32) {
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 28.0, seed, ..Default::default() });
    let mut packets = Vec::new();
    let mut truths = Vec::new();
    for f in 0..frames {
        let (p, gt) = rru.generate_frame(f);
        packets.extend(p);
        truths.push(gt);
    }
    (packets, truths, rru.noise_power())
}

fn quantized_config(cell: &CellConfig, workers: usize, noise: f32) -> EngineConfig {
    let mut cfg = EngineConfig::new(cell.clone(), workers);
    cfg.noise_power = noise;
    cfg.ablation.quantized_decoder = true;
    cfg
}

#[test]
fn quantized_plane_decodes_all_frames() {
    let cell = CellConfig::tiny_test(2);
    let (packets, truths, noise) = generate(&cell, 3, 5);
    let engine = Engine::new(quantized_config(&cell, 2, noise));
    let results = engine.process(packets, 3, false);
    assert_eq!(results.len(), 3);
    for r in &results {
        let gt = &truths[r.frame as usize];
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                assert!(
                    r.decode_ok[symbol][user],
                    "frame {} sym {symbol} user {user} failed on i8 plane",
                    r.frame
                );
                assert_eq!(
                    r.decoded[symbol][user], gt.info_bits[symbol][user],
                    "frame {} sym {symbol} user {user} bits differ",
                    r.frame
                );
            }
        }
    }
}

#[test]
fn quantized_threaded_matches_inline_reference() {
    let cell = CellConfig::tiny_test(2);
    let (packets, _truths, noise) = generate(&cell, 2, 11);
    let cfg = quantized_config(&cell, 2, noise);

    let engine = Engine::new(cfg.clone());
    let threaded = engine.process(packets.clone(), 2, false);

    let mut inline = InlineProcessor::new(cfg);
    for f in 0..2u32 {
        let per_frame: Vec<bytes::Bytes> = packets
            .iter()
            .filter(|p| agora_fronthaul::decode(p).unwrap().0.frame == f)
            .cloned()
            .collect();
        let reference = inline.process_frame(f, &per_frame);
        let t = threaded.iter().find(|r| r.frame == f).unwrap();
        assert_eq!(t.decoded, reference.decoded, "frame {f} differs from inline reference");
        assert_eq!(t.decode_ok, reference.decode_ok, "frame {f} success flags differ");
    }
}

#[test]
fn quantized_and_float_planes_agree_at_operating_snr() {
    // The A/B the ablation toggle exists for: at operating SNR the
    // quantised plane must land on the same information bits as the
    // float plane. Run both over the identical packet stream.
    let cell = CellConfig::tiny_test(2);
    let (packets, truths, noise) = generate(&cell, 3, 29);

    let mut float_cfg = EngineConfig::new(cell.clone(), 2);
    float_cfg.noise_power = noise;
    let float_results = Engine::new(float_cfg).process(packets.clone(), 3, false);

    let quant_results = Engine::new(quantized_config(&cell, 2, noise)).process(packets, 3, false);

    for (fr, qr) in float_results.iter().zip(quant_results.iter()) {
        assert_eq!(fr.frame, qr.frame);
        let gt = &truths[fr.frame as usize];
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                assert!(fr.decode_ok[symbol][user] && qr.decode_ok[symbol][user]);
                assert_eq!(
                    fr.decoded[symbol][user], qr.decoded[symbol][user],
                    "frame {} sym {symbol} user {user}: planes disagree",
                    fr.frame
                );
                assert_eq!(qr.decoded[symbol][user], gt.info_bits[symbol][user]);
            }
        }
    }
}

#[test]
fn quantized_plane_works_with_strided_layout_ablation() {
    // The strided (cache_layout off) demod path also feeds the i8 plane;
    // decoded bits must match the cache-friendly layout's.
    let cell = CellConfig::tiny_test(2);
    let (packets, truths, noise) = generate(&cell, 2, 37);

    let block = Engine::new(quantized_config(&cell, 2, noise)).process(packets.clone(), 2, false);

    let mut strided_cfg = quantized_config(&cell, 2, noise);
    strided_cfg.ablation.cache_layout = false;
    let strided = Engine::new(strided_cfg).process(packets, 2, false);

    for (b, s) in block.iter().zip(strided.iter()) {
        let gt = &truths[b.frame as usize];
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                assert!(s.decode_ok[symbol][user], "strided i8 decode failed");
                assert_eq!(b.decoded[symbol][user], s.decoded[symbol][user]);
                assert_eq!(s.decoded[symbol][user], gt.info_bits[symbol][user]);
            }
        }
    }
}

#[test]
fn quantized_plane_counters_reconcile_under_loss() {
    // The fault_injection acceptance criteria must hold unchanged with
    // the quantised plane active: every frame yields a result, the
    // loss/dup counters reconcile exactly with the injector's log, and
    // clean frames decode perfectly.
    let cell = CellConfig {
        num_antennas: 64,
        num_users: 16,
        fft_size: 128,
        num_data_sc: 64,
        cp_len: 0,
        modulation: ModScheme::Qpsk,
        pilot_scheme: PilotScheme::FrequencyOrthogonal,
        zf_group: 16,
        ldpc: LdpcParams { base_graph: BaseGraphId::Bg2, z: 4, rate: 1.0 / 3.0, max_iters: 8 },
        schedule: FrameSchedule::uplink(1, 2),
        symbol_duration_ns: 71_000,
    };
    cell.validate().expect("reduced cell must validate");
    const FRAMES: u32 = 8;

    let mut rru = RruEmulator::new(
        cell.clone(),
        RruConfig { snr_db: 30.0, seed: 4242, ..Default::default() },
    );
    let mut packets = Vec::new();
    let mut truths = Vec::new();
    for f in 0..FRAMES {
        let (p, gt) = rru.generate_frame(f);
        packets.extend(p);
        truths.push(gt);
    }
    let noise = rru.noise_power();
    let mut inj = FaultInjector::new(FaultConfig {
        loss: LossModel::Iid { p: 0.01 },
        reorder_prob: 0.05,
        max_delay: 16,
        duplicate_prob: 0.01,
        seed: 7,
    });
    let faulted = inj.apply(packets);
    let fs = inj.stats().clone();
    assert!(fs.lost > 0, "1% over {} packets must lose some", fs.offered);

    let mut cfg = quantized_config(&cell, 3, noise);
    cfg.frame_deadline_ns = Some(700_000_000);
    let engine = Engine::new(cfg);
    let results = engine.process(faulted, FRAMES, false);

    assert_eq!(results.len(), FRAMES as usize);
    let stats = engine.stats();
    assert_eq!(stats.packets_lost(), fs.lost, "loss counters must reconcile");
    assert_eq!(
        stats.packets_duplicate() + stats.packets_late(),
        fs.duplicated,
        "dup+late must equal injected duplicates"
    );
    assert_eq!(stats.frames_completed() + stats.frames_dropped(), FRAMES as u64);

    for r in &results {
        let lost_here = fs.per_frame_lost.get(&r.frame).copied().unwrap_or(0);
        assert_eq!(r.dropped, lost_here > 0, "frame {} drop status", r.frame);
        if !r.dropped {
            let gt = &truths[r.frame as usize];
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    assert!(
                        r.decode_ok[symbol][user],
                        "frame {} sym {symbol} user {user}",
                        r.frame
                    );
                    assert_eq!(r.decoded[symbol][user], gt.info_bits[symbol][user]);
                }
            }
        } else {
            assert_eq!(r.decoded.len(), cell.symbols_per_frame());
        }
    }
}
