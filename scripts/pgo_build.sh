#!/usr/bin/env bash
# Profile-guided-optimisation build (the paper's Table 4 lists PGO as
# one of Agora's ablations; the C++ original trains on a frame loop).
#
#   scripts/pgo_build.sh [out-dir]
#
# 1. builds the workspace with -Cprofile-generate,
# 2. trains on the scheduler bench's threaded 64x16 frame loop
#    (`sched --pgo-workload`) plus the queue-op microbench itself,
# 3. merges the raw profiles with llvm-profdata (searched on PATH, then
#    inside `rustc --print sysroot`),
# 4. rebuilds with -Cprofile-use.
#
# If llvm-profdata is unavailable the script says so and leaves the
# plain release build in place (exit 0): the container image does not
# always ship the llvm-tools component, and a missing profiler must not
# fail CI.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-target/pgo}"
PROF_DIR="$(pwd)/$OUT/profiles"
mkdir -p "$PROF_DIR"

find_llvm_profdata() {
    if command -v llvm-profdata >/dev/null 2>&1; then
        command -v llvm-profdata
        return 0
    fi
    local sysroot
    sysroot="$(rustc --print sysroot)"
    find "$sysroot" -name llvm-profdata -type f 2>/dev/null | head -n1
}

LLVM_PROFDATA="$(find_llvm_profdata || true)"
if [ -z "${LLVM_PROFDATA}" ]; then
    echo "pgo: llvm-profdata not found (PATH or rustc sysroot); keeping the plain release build"
    cargo build --release -p agora-bench --bin sched
    exit 0
fi
echo "pgo: using ${LLVM_PROFDATA}"

echo "== instrumented build =="
RUSTFLAGS="-Cprofile-generate=${PROF_DIR}" \
    cargo build --release -p agora-bench --bin sched --target-dir "$OUT/gen"

echo "== training run (threaded 64x16 frame loop + queue microbench) =="
"$OUT/gen/release/sched" --pgo-workload
# The queue-op paths are the optimisation target; train them too, but
# tolerate a gate miss during training (the instrumented binary is slow).
"$OUT/gen/release/sched" || true

echo "== merging profiles =="
# A PATH llvm-profdata can be older than rustc's LLVM and reject the
# profraw format; that is an environment limitation, not a CI failure.
if ! "${LLVM_PROFDATA}" merge -o "$PROF_DIR/merged.profdata" "$PROF_DIR"/*.profraw; then
    echo "pgo: ${LLVM_PROFDATA} cannot read rustc's profile format" \
         "(needs the llvm-tools rustup component); keeping the plain release build"
    cargo build --release -p agora-bench --bin sched
    exit 0
fi

echo "== optimised rebuild =="
RUSTFLAGS="-Cprofile-use=${PROF_DIR}/merged.profdata" \
    cargo build --release -p agora-bench --bin sched --target-dir "$OUT/use"

echo "pgo: optimised binary at $OUT/use/release/sched"
echo "pgo: compare against the plain release build with:"
echo "         cargo build --release -p agora-bench --bin sched"
echo "         ./target/release/sched && $OUT/use/release/sched"
