#!/usr/bin/env bash
# Local CI gate: everything a PR must pass before merging.
#
#   scripts/ci.sh
#
# Runs the release build (the tier-1 artifact), the full workspace test
# suite, format and clippy gates (warnings promoted to errors), and the
# release parity smokes. Fails fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test --workspace -q

echo "== decoder parity smoke =="
cargo run --release -q -p agora-bench --bin decoder_parity

echo "== fft parity smoke =="
cargo run --release -q -p agora-bench --bin fft_parity

echo "== gemm parity smoke =="
cargo run --release -q -p agora-bench --bin gemm_parity

echo "== zf parity smoke =="
cargo run --release -q -p agora-bench --bin zf_parity

echo "== fronthaul parity smoke =="
cargo run --release -q -p agora-bench --bin fronthaul_parity

echo "== deployment parity smoke =="
cargo run --release -q -p agora-bench --bin deployment_parity

echo "== zf cluster parity smoke =="
cargo run --release -q -p agora-bench --bin zf_cluster_parity

echo "== sched parity smoke =="
cargo run --release -q -p agora-bench --bin sched_parity

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "CI OK"
