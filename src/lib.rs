//! # agora-repro — workspace facade
//!
//! Re-exports the crates of the Agora reproduction so examples and
//! integration tests can reach everything through one dependency. The
//! real code lives in the `crates/` workspace members; see the README
//! for the architecture tour and DESIGN.md for the paper mapping.

pub use agora_channel as channel;
pub use agora_core as core;
pub use agora_fft as fft;
pub use agora_fronthaul as fronthaul;
pub use agora_ldpc as ldpc;
pub use agora_math as math;
pub use agora_phy as phy;
pub use agora_queue as queue;
